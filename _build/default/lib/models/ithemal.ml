(** Ithemal-like learned throughput predictor.

    A feature-hashed regressor trained with SGD on the measured dataset —
    the paper's "our dataset can be used as training data for
    learning-based cost models" demonstrated end-to-end. Like the real
    Ithemal it outputs a single number per block with no interpretable
    schedule, and its accuracy profile follows from the training data:
    excellent on the dominant (non-vectorised) block population, weaker
    on the under-represented vectorised blocks.

    The model predicts log-throughput from a linear combination of hashed
    instruction-form tokens plus dense block statistics, optimised for
    squared error in log space (i.e. roughly relative error). *)

open X86

let feature_dim = 4096
let dense_features = 12

type t = {
  weights : float array;
}

(* Token for one instruction: mnemonic + width + operand kinds. *)
let token (inst : Inst.t) =
  let kinds =
    List.map
      (function
        | Operand.Imm _ -> "i"
        | Operand.Reg r ->
          if Reg.is_ymm r then "y" else if Reg.is_vector r then "v" else "r"
        | Operand.Mem _ -> "m")
      inst.Inst.operands
  in
  Printf.sprintf "%s.%s.%s"
    (Opcode.mnemonic inst.Inst.opcode)
    (Width.to_string inst.Inst.width)
    (String.concat "" kinds)

(* Dependence-structure signals a sequence model learns from
   instruction order: the per-iteration critical path and — the one that
   actually bounds steady-state throughput — the loop-carried recurrence
   (how much the register-readiness frontier advances per repetition of
   the block). *)
let critical_paths (block : Inst.t list) =
  let n = Reg.num_roots + 1 in
  let flags = Reg.num_roots in
  let one_pass ready latency_of =
    List.iter
      (fun inst ->
        let reads = List.map Reg.root_index (Inst.read_roots inst) in
        let reads = if Opcode.reads_flags inst.Inst.opcode then flags :: reads else reads in
        let start = List.fold_left (fun acc r -> Float.max acc ready.(r)) 0.0 reads in
        let finish = start +. latency_of inst in
        let writes = List.map Reg.root_index (Inst.write_roots inst) in
        let writes = if Opcode.writes_flags inst.Inst.opcode then flags :: writes else writes in
        List.iter (fun r -> ready.(r) <- finish) writes)
      block;
    Array.fold_left Float.max 0.0 ready
  in
  let heur_latency inst =
    let base = if Opcode.is_fp_arith inst.Inst.opcode then 4.0 else 1.0 in
    base +. if Inst.has_load inst then 4.0 else 0.0
  in
  let ready = Array.make n 0.0 in
  let after1 = one_pass ready (fun _ -> 1.0) in
  let after2 = one_pass ready (fun _ -> 1.0) in
  let carried_unit = after2 -. after1 in
  let ready = Array.make n 0.0 in
  let h1 = one_pass ready heur_latency in
  let h2 = one_pass ready heur_latency in
  let carried_heur = h2 -. h1 in
  (carried_unit, carried_heur, h1)

let feature_index tok =
  Int64.to_int
    (Int64.rem
       (Int64.logand (Bstats.Rng.seed_of_string tok) Int64.max_int)
       (Int64.of_int feature_dim))

(* Sparse + dense feature vector of a block. *)
let featurize (block : Inst.t list) : (int * float) list =
  let counts = Hashtbl.create 16 in
  let bump i v =
    Hashtbl.replace counts i (v +. Option.value ~default:0.0 (Hashtbl.find_opt counts i))
  in
  let n_inst = ref 0 and n_loads = ref 0 and n_stores = ref 0 and n_vec = ref 0 in
  let prev = ref None in
  List.iter
    (fun inst ->
      incr n_inst;
      if Inst.has_load inst then incr n_loads;
      if Inst.has_store inst then incr n_stores;
      if Opcode.is_vector inst.Inst.opcode then incr n_vec;
      let tok = token inst in
      bump (feature_index tok) 1.0;
      (* coarse bigram: adjacent opcode-class pairs *)
      let coarse =
        (if Opcode.is_vector inst.Inst.opcode then "v" else "s")
        ^ (if Inst.has_load inst then "l" else "")
        ^ (if Inst.has_store inst then "w" else "")
      in
      (match !prev with
      | Some p -> bump (feature_index ("bg:" ^ p ^ ">" ^ coarse)) 1.0
      | None -> ());
      prev := Some coarse)
    block;
  let dense_base = feature_dim in
  (* dense features are normalised to keep SGD well-conditioned *)
  bump dense_base (float_of_int !n_inst /. 16.0);
  bump (dense_base + 1) (float_of_int !n_loads /. 8.0);
  bump (dense_base + 2) (float_of_int !n_stores /. 8.0);
  bump (dense_base + 3) (float_of_int !n_vec /. 8.0);
  bump (dense_base + 4) (log (1.0 +. float_of_int !n_inst));
  bump (dense_base + 5) 1.0 (* bias *);
  let carried_unit, carried_heur, iter_path = critical_paths block in
  bump (dense_base + 6) (carried_unit /. 8.0);
  bump (dense_base + 7) (carried_heur /. 16.0);
  bump (dense_base + 8) (iter_path /. 16.0);
  bump (dense_base + 9) (float_of_int (!n_loads + !n_stores) /. 8.0);
  (* repetition of a single form hints at a pure port-throughput bound *)
  let max_count = Hashtbl.fold (fun i v m -> if i < feature_dim then Float.max m v else m) counts 0.0 in
  bump (dense_base + 10) (max_count /. 8.0);
  bump (dense_base + 11) (Float.min carried_unit (float_of_int !n_inst) /. 8.0);
  Hashtbl.fold (fun i v acc -> (i, v) :: acc) counts []

let dot w feats = List.fold_left (fun acc (i, v) -> acc +. (w.(i) *. v)) 0.0 feats

let raw_predict t feats = dot t.weights feats

let predict_block t block =
  let feats = featurize block in
  Float.max 0.2 (Float.min 5000.0 (raw_predict t feats))

(** Train on (block, measured throughput) pairs.

    The regression is fit for {e relative} error: each example (x, y) is
    rescaled to (x/y, 1) and optimised with normalised LMS, so a block
    predicted at twice or half its measured throughput contributes the
    same loss whatever its magnitude — matching the evaluation metric. *)
let train ?(epochs = 300) ?(lr = 0.5) (dataset : (Inst.t list * float) list) : t =
  let t = { weights = Array.make (feature_dim + dense_features) 0.0 } in
  let examples =
    List.filter_map
      (fun (block, y) ->
        if y > 0.0 && Float.is_finite y then
          let scale = 1.0 /. Float.max 0.25 y in
          Some (List.map (fun (i, v) -> (i, v *. scale)) (featurize block))
        else None)
      dataset
  in
  let n = List.length examples in
  if n = 0 then t
  else begin
    for epoch = 1 to epochs do
      let rate = lr /. (1.0 +. (0.01 *. float_of_int epoch)) in
      List.iter
        (fun feats ->
          let err = dot t.weights feats -. 1.0 in
          let norm =
            List.fold_left (fun acc (_, v) -> acc +. (v *. v)) 1e-9 feats
          in
          let step = rate *. err /. norm in
          List.iter (fun (i, v) -> t.weights.(i) <- t.weights.(i) -. (step *. v)) feats)
        examples
    done;
    t
  end

let create (trained : t) : Model_intf.t =
  {
    Model_intf.name = "Ithemal";
    predict = (fun block -> Model_intf.Throughput (predict_block trained block));
    schedule = None;
  }
