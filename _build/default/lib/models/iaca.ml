(** IACA-like analyzer.

    Shares the static scheduler and knows Intel's private optimisations
    (micro-fusion, zero idioms, move elimination), which is what makes
    the real IACA "generally recognised as the more accurate analyzer".
    Its two documented failure modes are reproduced:

    - the division table bug: [div r32] is costed with the wide
      128/64-bit dividend latency (predicting ~98 cycles where ~22 are
      measured);
    - a modest level of per-opcode table error. *)

open X86

let noise_seed = 0x1ACAL

let table (d : Uarch.Descriptor.t) : Static_sim.table =
 fun inst ->
  let p = d.profile in
  let decomp = Uarch.Descriptor.decompose d inst in
  let divider_busy =
    match inst.Inst.opcode with
    | Opcode.Div | Idiv -> p.div64_latency (* the table bug *)
    | Opcode.Fdiv _ | Fsqrt _ -> p.fp_div_latency_s
    | _ -> 0
  in
  let uops =
    List.map
      (fun (u : Uarch.Uop.t) ->
        let latency =
          match inst.Inst.opcode with
          | Opcode.Div | Idiv when u.kind = Uarch.Uop.Exec -> p.div64_latency
          | _ ->
            Table_noise.latency ~seed:noise_seed ~fraction:0.45 ~amplitude:0.55
              inst.Inst.opcode u.latency
        in
        let ports =
          Table_noise.drop_port ~seed:noise_seed ~fraction:0.13
            inst.Inst.opcode u.ports
        in
        { Static_sim.ports; latency; is_load = u.kind = Uarch.Uop.Load })
      decomp.uops
  in
  let uops =
    (* mis-split table entries charge a spurious extra uop *)
    if Table_noise.extra_uop ~seed:noise_seed ~fraction:0.17 inst.Inst.opcode
       && uops <> []
    then uops @ [ { Static_sim.ports = p.alu; latency = 1; is_load = false } ]
    else uops
  in
  {
    Static_sim.uops;
    eliminated = decomp.eliminated;
    divider_busy;
    split_fused_loads = false;
  }

let create (d : Uarch.Descriptor.t) : Model_intf.t =
  let config = { Static_sim.n_ports = d.n_ports; issue_width = d.rename_width } in
  let tbl = table d in
  {
    Model_intf.name = "IACA";
    predict = (fun block -> Model_intf.Throughput (Static_sim.throughput config tbl block));
    schedule = Some (fun block -> Static_sim.schedule config tbl block);
  }
