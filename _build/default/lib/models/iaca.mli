(** IACA-like analyzer: knows Intel's private optimisations
    (micro-fusion, zero idioms, move elimination) but carries the
    documented division-table bug and a modest level of per-opcode table
    error. *)

(** The raw micro-op table this model uses (exposed for tests). *)
val table : Uarch.Descriptor.t -> Static_sim.table

val create : Uarch.Descriptor.t -> Model_intf.t
