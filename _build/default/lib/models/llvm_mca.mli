(** llvm-mca-like analyzer: driven by a separate scheduling-model table
    with its own drift from the hardware; no zero-idiom knowledge;
    schedules micro-fused load+op pairs as one unit (the paper's
    mis-scheduling case study); markedly staler table on Skylake. *)

(** The raw micro-op table this model uses (exposed for tests). *)
val table : Uarch.Descriptor.t -> Static_sim.table

val create : Uarch.Descriptor.t -> Model_intf.t
