(** Assembly of the full benchmark suite at a configurable scale,
    deterministic in the seed. *)

type config = {
  scale : int;  (** divide the paper's block counts by this factor *)
  seed : int64;
}

val default_config : config

(** Read the scale from the BHIVE_SCALE environment variable. *)
val config_from_env : unit -> config

val scaled_count : config -> Apps.t -> int

(** The nine-application suite of the paper's Table "apps". *)
val generate : ?config:config -> unit -> Block.t list

(** Suite plus OpenSSL (used by the per-application error figures). *)
val generate_extended : ?config:config -> unit -> Block.t list

(** The Spanner/Dremel case-study corpora. *)
val generate_google : ?config:config -> unit -> Block.t list

val count_by_app : Block.t list -> (string * int) list
