(** Basic-block generator combinators.

    Application corpora are synthesised from weighted mixtures of code
    patterns ("snippets") characteristic of each domain. The combinators
    track two register invariants so that generated blocks behave like
    real compiler output under the profiler:

    - {b pointer registers} still hold the initial register value (plus a
      bounded offset) and may be used as memory bases; once a register is
      clobbered by a computation it moves to the scratch pool;
    - {b known-nonzero} values are required for divisors.

    Memory operands default to access-size alignment (compilers align
    data); a small probability of odd displacements reproduces the
    paper's 0.18% misaligned-access drop rate. *)

open X86
open X86.Builder

type ctx = {
  rng : Bstats.Rng.t;
  mutable acc : Inst.t list;  (** reversed *)
  mutable pointers : Reg.t list;  (** usable as memory bases *)
  mutable scratch : Reg.t list;  (** clobbered, small/unknown values *)
  mutable vecs : Reg.t list;  (** vector registers in play *)
  mutable len : int;
}

let all_pointers =
  Reg.[ rdi; rsi; rbx; rbp; r12; r13; r14; r15; rcx; r8; r9 ]

let all_scratch = Reg.[ rax; rdx; r10; r11 ]

let create rng =
  {
    rng;
    acc = [];
    pointers = all_pointers;
    scratch = all_scratch;
    vecs = List.init 16 Reg.xmm;
    len = 0;
  }

let emit ctx inst =
  ctx.acc <- inst :: ctx.acc;
  ctx.len <- ctx.len + 1

let finish ctx = List.rev ctx.acc

(* Pick a pointer register (still valid as a base). *)
let pointer ctx =
  match ctx.pointers with
  | [] -> Reg.rsp
  | ps -> Bstats.Rng.choose ctx.rng ps

(* Pick a scratch register, possibly demoting a pointer if running out. *)
let scratch ctx =
  match ctx.scratch with
  | [] -> (
    match ctx.pointers with
    | [] -> Reg.rax
    | p :: rest ->
      ctx.pointers <- rest;
      ctx.scratch <- [ p ];
      p)
  | ss -> Bstats.Rng.choose ctx.rng ss

(* Clobbering a pointer register demotes it to scratch. *)
let clobber ctx r =
  if List.exists (Reg.equal r) ctx.pointers then begin
    ctx.pointers <- List.filter (fun p -> not (Reg.equal p r)) ctx.pointers;
    ctx.scratch <- r :: ctx.scratch
  end

let vreg ctx = Bstats.Rng.choose ctx.rng ctx.vecs
let yreg ctx = match vreg ctx with Reg.Xmm i -> Reg.Ymm i | r -> r

let narrow w r =
  match r with Reg.Gpr (g, _) -> Reg.Gpr (g, w) | r -> r

(* Aligned displacement for an access of [size] bytes; occasionally odd
   (the misaligned-drop knob). *)
let disp ctx ?(misalign_p = 0.002) ~size () =
  let slots = 4096 / size in
  let d = size * (Bstats.Rng.int ctx.rng (min slots 256) - 32) in
  if misalign_p > 0.0 && Bstats.Rng.bernoulli ctx.rng misalign_p then d + (size / 2) + 1
  else d

(* A simple base+disp memory operand. *)
let mem_bd ctx ?misalign_p ~size () =
  let base = pointer ctx in
  mb ~base ~disp:(disp ctx ?misalign_p ~size ()) ()

(* base + index*scale + disp with a masked (small) index register. *)
let mem_indexed ctx ~size ~index () =
  let base = pointer ctx in
  let scale = Bstats.Rng.choose ctx.rng [ 1; 2; 4; 8 ] in
  mb ~base ~index ~scale ~disp:(disp ctx ~size ()) ()

(* Absolute lookup table, gzip-crc style: table(, idx, scale). The table
   address is aligned to the element size. *)
let mem_table ctx ~index ~size () =
  let table = 0x40000 + (size * Bstats.Rng.int ctx.rng 4096) in
  mb ~index ~scale:size ~disp:table ()

let width ctx = Bstats.Rng.choose_weighted ctx.rng
    [ (0.15, Width.B); (0.05, Width.W); (0.35, Width.D); (0.45, Width.Q) ]

(* --- scalar snippets -------------------------------------------------- *)

(* Dependent ALU chain on one register. *)
let alu_chain ctx =
  let r0 = scratch ctx in
  let n = 1 + Bstats.Rng.int ctx.rng 3 in
  for _ = 1 to n do
    let src = Bstats.Rng.choose ctx.rng (ctx.scratch @ ctx.pointers) in
    let op = Bstats.Rng.choose ctx.rng [ add; sub; and_; or_; xor ] in
    if Bstats.Rng.bernoulli ctx.rng 0.4 then
      emit ctx (op (r r0) (i (Bstats.Rng.int ctx.rng 256)))
    else emit ctx (op (r r0) (r src))
  done

(* Immediate-heavy scalar arithmetic on a fresh register. *)
let imm_alu ctx =
  let r0 = scratch ctx in
  let w = width ctx in
  let w = if Width.equal w Width.B then Width.D else w in
  emit ctx (mov ~w (r (narrow w r0)) (i (Bstats.Rng.int ctx.rng 4096)));
  emit ctx (add ~w (r (narrow w r0)) (i (1 + Bstats.Rng.int ctx.rng 64)))

(* Plain load into a scratch register. *)
let load ctx =
  let dst = scratch ctx in
  let w = width ctx in
  let m = mem_bd ctx ~size:(Width.bytes w) () in
  if Width.bytes w < 4 then
    emit ctx (movzx ~from:w ~w:Width.D (r (narrow Width.D dst)) m)
  else emit ctx (mov ~w (r (narrow w dst)) m)

(* Load-op: ALU with a memory source. *)
let load_op ctx =
  let dst = scratch ctx in
  let w = Bstats.Rng.choose ctx.rng [ Width.D; Width.Q ] in
  let op = Bstats.Rng.choose ctx.rng [ add; sub; and_; or_; xor ] in
  emit ctx (op ~w (r (narrow w dst)) (mem_bd ctx ~size:(Width.bytes w) ()))

(* Store a register. *)
let store ctx ?misalign_p () =
  let src = Bstats.Rng.choose ctx.rng (ctx.scratch @ ctx.pointers) in
  let w = Bstats.Rng.choose ctx.rng [ Width.B; Width.D; Width.Q ] in
  emit ctx (mov ~w (mem_bd ctx ?misalign_p ~size:(Width.bytes w) ()) (r (narrow w src)))

(* Read-modify-write on memory. *)
let rmw_mem ctx =
  let w = Bstats.Rng.choose ctx.rng [ Width.D; Width.Q ] in
  let op = Bstats.Rng.choose ctx.rng [ add; sub; and_; or_ ] in
  emit ctx (op ~w (mem_bd ctx ~size:(Width.bytes w) ()) (i (1 + Bstats.Rng.int ctx.rng 32)))

(* Store an immediate to memory (OSACA's parser famously drops these). *)
let store_imm ctx =
  let w = Bstats.Rng.choose ctx.rng [ Width.D; Width.Q ] in
  emit ctx (mov ~w (mem_bd ctx ~size:(Width.bytes w) ()) (i (Bstats.Rng.int ctx.rng 256)))

(* Compare + flag consumer (setcc or cmov). *)
let cmp_flags ctx =
  let a = Bstats.Rng.choose ctx.rng (ctx.pointers @ ctx.scratch) in
  let b = Bstats.Rng.choose ctx.rng (ctx.pointers @ ctx.scratch) in
  emit ctx (cmp (r a) (r b));
  let c = Bstats.Rng.choose ctx.rng Cond.[ E; NE; L; GE; B_; A ] in
  if Bstats.Rng.bernoulli ctx.rng 0.5 then begin
    let dst = scratch ctx in
    emit ctx (set c (r (narrow Width.B dst)));
    emit ctx (movzx ~from:Width.B ~w:Width.D (r (narrow Width.D dst)) (r (narrow Width.B dst)))
  end
  else begin
    let dst = scratch ctx in
    emit ctx (cmov c (r dst) (r (Bstats.Rng.choose ctx.rng ctx.pointers)))
  end

(* test reg,reg — extremely common compiler idiom. *)
let test_reg ctx =
  let a = Bstats.Rng.choose ctx.rng (ctx.scratch @ ctx.pointers) in
  emit ctx (test (r a) (r a))

(* Bit manipulation mix. *)
let bit_mix ctx =
  let r0 = scratch ctx in
  let n = 1 + Bstats.Rng.int ctx.rng 3 in
  for _ = 1 to n do
    match Bstats.Rng.int ctx.rng 8 with
    | 0 -> emit ctx (shr (r r0) (i (1 + Bstats.Rng.int ctx.rng 31)))
    | 1 -> emit ctx (shl (r r0) (i (1 + Bstats.Rng.int ctx.rng 31)))
    | 2 -> emit ctx (rol (r r0) (i (1 + Bstats.Rng.int ctx.rng 31)))
    | 3 -> emit ctx (and_ (r r0) (i (Bstats.Rng.int ctx.rng 0xFFFF)))
    | 4 -> emit ctx (xor (r r0) (r (Bstats.Rng.choose ctx.rng ctx.pointers)))
    | 5 -> emit ctx (popcnt (r r0) (r r0))
    | 6 -> emit ctx (tzcnt (r r0) (r r0))
    | _ -> emit ctx (not_ (r r0))
  done

(* CRC/hash-style table lookup: byte load, zero-extend, table index. *)
let table_lookup ctx =
  let idx = scratch ctx in
  let acc = scratch ctx in
  emit ctx (movzx ~from:Width.B ~w:Width.D (r (narrow Width.D idx))
              (mem_bd ctx ~size:1 ()));
  emit ctx (xor (r acc) (mem_table ctx ~index:(narrow Width.Q idx) ~size:8 ()))

(* Pointer increment (loop induction). *)
let pointer_bump ctx =
  let p = pointer ctx in
  (* cache-line-multiple strides keep later accesses through this base at
     their natural alignment, as real strip-mined kernels do *)
  let step = Bstats.Rng.choose ctx.rng [ 64; 128 ] in
  emit ctx (add (r p) (i step))

(* Canonical unsigned 32-bit division: xor edx,edx; div ecx. *)
let div_pattern ctx =
  let divisor = pointer ctx in
  emit ctx (xor ~w:Width.D (r Reg.edx) (r Reg.edx));
  emit ctx (div ~w:Width.D (r (narrow Width.D divisor)));
  clobber ctx Reg.rax;
  clobber ctx Reg.rdx

let mul_pattern ctx =
  let dst = scratch ctx in
  if Bstats.Rng.bernoulli ctx.rng 0.5 then
    emit ctx (imul (r dst) (r (Bstats.Rng.choose ctx.rng ctx.pointers)))
  else emit ctx (imul3 (r dst) (r (Bstats.Rng.choose ctx.rng ctx.pointers))
                   (i (3 + Bstats.Rng.int ctx.rng 61)))

(* Multi-precision add chain (OpenSSL bignum). *)
let adc_bignum ctx =
  let p = pointer ctx in
  let q = pointer ctx in
  let t = scratch ctx in
  emit ctx (mov (r t) (mb ~base:q ~disp:0 ()));
  emit ctx (add (r t) (mb ~base:p ~disp:0 ()));
  emit ctx (mov (mb ~base:p ~disp:0 ()) (r t));
  for k = 1 to 1 + Bstats.Rng.int ctx.rng 3 do
    let t = scratch ctx in
    emit ctx (mov (r t) (mb ~base:q ~disp:(8 * k) ()));
    emit ctx (adc (r t) (mb ~base:p ~disp:(8 * k) ()));
    emit ctx (mov (mb ~base:p ~disp:(8 * k) ()) (r t))
  done

(* Byte scan (strcmp/memchr flavour). *)
let byte_scan ctx =
  let p = pointer ctx in
  let t = scratch ctx in
  emit ctx (movzx ~from:Width.B ~w:Width.D (r (narrow Width.D t))
              (mb ~base:p ~disp:(Bstats.Rng.int ctx.rng 64) ()));
  emit ctx (cmp ~w:Width.B (r (narrow Width.B t)) (i (Bstats.Rng.int ctx.rng 128)));
  let dst = scratch ctx in
  emit ctx (set Cond.E (r (narrow Width.B dst)))

(* Stack spill/reload pair. *)
let stack_spill ctx =
  let src = Bstats.Rng.choose ctx.rng (ctx.pointers @ ctx.scratch) in
  let slot = 8 * Bstats.Rng.int ctx.rng 16 in
  emit ctx (mov (mb ~base:Reg.rsp ~disp:slot ()) (r src));
  let dst = scratch ctx in
  emit ctx (mov (r dst) (mb ~base:Reg.rsp ~disp:slot ()))

(* Register-spill burst: consecutive stores of distinct registers, the
   shape of function prologues and struct initialisation. *)
let store_burst ctx =
  let base = pointer ctx in
  let n = 2 + Bstats.Rng.int ctx.rng 4 in
  let start = 8 * Bstats.Rng.int ctx.rng 32 in
  List.iteri
    (fun k src ->
      emit ctx (mov (mb ~base ~disp:(start + (8 * k)) ()) (r src)))
    (List.filteri (fun i _ -> i < n) (ctx.scratch @ ctx.pointers))

(* Reload burst: consecutive loads into distinct registers (callee-saved
   restores, field gathers). *)
let load_burst ctx =
  let base = pointer ctx in
  let n = 2 + Bstats.Rng.int ctx.rng 4 in
  let start = 8 * Bstats.Rng.int ctx.rng 32 in
  for k = 0 to n - 1 do
    let dst = scratch ctx in
    emit ctx (mov (r dst) (mb ~base ~disp:(start + (8 * k)) ()))
  done

(* Address computation with lea. *)
let lea_addr ctx =
  let dst = scratch ctx in
  let base = pointer ctx in
  let index = Bstats.Rng.choose ctx.rng ctx.pointers in
  emit ctx
    (lea (r dst)
       (mb ~base ~index ~scale:(Bstats.Rng.choose ctx.rng [ 1; 2; 4; 8 ])
          ~disp:(Bstats.Rng.int ctx.rng 256) ()))

(* Pointer chase: load a 64-bit pointer and dereference it. On the real
   and the simulated harness alike this is usually unmappable (the loaded
   fill pattern is not a canonical address), so blocks containing it are
   the ones the monitor gives up on. *)
let pointer_chase ctx =
  let p = pointer ctx in
  let t = scratch ctx in
  emit ctx (mov (r t) (mb ~base:p ~disp:(8 * Bstats.Rng.int ctx.rng 8) ()));
  emit ctx (mov (r t) (mb ~base:t ~disp:(8 * Bstats.Rng.int ctx.rng 4) ()))

(* Page walker: strides so far per copy that the monitor exceeds its
   fault budget under large unrolling. *)
let page_walker ctx =
  let p = pointer ctx in
  let t = scratch ctx in
  emit ctx (mov (r t) (mb ~base:p ()));
  emit ctx (add (r p) (i (4096 + (4096 * Bstats.Rng.int ctx.rng 4))))

(* --- vector snippets -------------------------------------------------- *)

let vec_load ctx ?(ymm = false) ?misalign_p () =
  let dst = if ymm then yreg ctx else vreg ctx in
  let size = if ymm then 32 else 16 in
  let m = mem_bd ctx ?misalign_p ~size () in
  let mov_op =
    Bstats.Rng.choose ctx.rng [ movaps; movups; movdqa ]
  in
  emit ctx (mov_op (r dst) m)

let vec_store ctx ?(ymm = false) () =
  let src = if ymm then yreg ctx else vreg ctx in
  let size = if ymm then 32 else 16 in
  emit ctx (movaps (mem_bd ctx ~size ()) (r src))

(* y = a*x + y with packed single/double. *)
let axpy ctx ?(ymm = false) () =
  let acc = if ymm then yreg ctx else vreg ctx in
  let x = if ymm then yreg ctx else vreg ctx in
  let size = if ymm then 32 else 16 in
  emit ctx (movups (r x) (mem_bd ctx ~size ()));
  if Bstats.Rng.bernoulli ctx.rng 0.5 then begin
    emit ctx (mulps (r x) (r (if ymm then yreg ctx else vreg ctx)));
    emit ctx (addps (r acc) (r x))
  end
  else emit ctx (vfmadd231ps (r acc) (r x) (r (if ymm then yreg ctx else vreg ctx)))

(* FMA-rich GEMM microkernel step (AVX2). *)
let fma_step ctx ~ymm =
  let a = if ymm then yreg ctx else vreg ctx in
  let b = if ymm then yreg ctx else vreg ctx in
  let c = if ymm then yreg ctx else vreg ctx in
  if Bstats.Rng.bernoulli ctx.rng 0.4 then
    emit ctx (vfmadd231ps (r c) (r a) (mem_bd ctx ~size:(if ymm then 32 else 16) ()))
  else emit ctx (vfmadd231ps (r c) (r a) (r b))

(* Register-only y += a*x (no memory operand). *)
let axpy_reg ctx =
  let acc = vreg ctx in
  let x = vreg ctx in
  if Bstats.Rng.bernoulli ctx.rng 0.5 then begin
    emit ctx (mulps (r x) (r (vreg ctx)));
    emit ctx (addps (r acc) (r x))
  end
  else emit ctx (vfmadd231ps (r acc) (r x) (r (vreg ctx)))

(* Register-only scalar double arithmetic. *)
let scalar_fp_reg ctx =
  let a = vreg ctx in
  let op = Bstats.Rng.choose ctx.rng [ addsd; mulsd; subsd ] in
  emit ctx (op (r a) (r (vreg ctx)))

(* Scalar double arithmetic (Eigen-style). *)
let scalar_fp ctx =
  let a = vreg ctx in
  let op = Bstats.Rng.choose ctx.rng [ addsd; mulsd; subsd ] in
  if Bstats.Rng.bernoulli ctx.rng 0.5 then
    emit ctx (op (r a) (mem_bd ctx ~size:8 ()))
  else emit ctx (op (r a) (r (vreg ctx)))

(* Horizontal reduction. *)
let reduce ctx =
  let a = vreg ctx in
  emit ctx (haddps (r a) (r a));
  emit ctx (haddps (r a) (r a))

(* ReLU / clamping with min/max against a zeroed register. *)
let relu ctx =
  let z = vreg ctx in
  let x = vreg ctx in
  emit ctx (xorps (r z) (r z));
  emit ctx (maxps (r x) (r z))

(* int<->float conversion mix. *)
let cvt_mix ctx =
  let x = vreg ctx in
  let t = scratch ctx in
  if Bstats.Rng.bernoulli ctx.rng 0.5 then begin
    emit ctx (cvtsi2ss ~w:Width.D (r x) (r (narrow Width.D t)));
    emit ctx (mulss (r x) (r (vreg ctx)))
  end
  else begin
    emit ctx (cvtdq2ps (r x) (r (vreg ctx)));
    emit ctx (addps (r x) (r (vreg ctx)))
  end

(* Shuffle/permute traffic. *)
let shuffle_mix ctx =
  let a = vreg ctx in
  let b = vreg ctx in
  match Bstats.Rng.int ctx.rng 4 with
  | 0 -> emit ctx (pshufd (r a) (r b) (i (Bstats.Rng.int ctx.rng 256)))
  | 1 -> emit ctx (shufps (r a) (r b) (i (Bstats.Rng.int ctx.rng 256)))
  | 2 -> emit ctx (unpcklps (r a) (r b))
  | _ -> emit ctx (punpckldq (r a) (r b))

(* Integer SIMD (codec flavour): multiply-accumulate, pack, average. *)
let int_simd ctx =
  let a = vreg ctx in
  let b = vreg ctx in
  match Bstats.Rng.int ctx.rng 6 with
  | 0 -> emit ctx (pmaddwd (r a) (r b))
  | 1 -> emit ctx (paddw (r a) (mem_bd ctx ~size:16 ()))
  | 2 -> emit ctx (packsswb (r a) (r b))
  | 3 -> emit ctx (Builder.mk (Opcode.Pavg Opcode.I8) [ r a; r b ])
  | 4 -> emit ctx (psubd (r a) (r b))
  | _ -> emit ctx (punpcklbw (r a) (r b))

(* Compare + mask + blend (ray tracing / branchless select). *)
let mask_select ctx =
  let m = vreg ctx in
  let a = vreg ctx in
  let b = vreg ctx in
  emit ctx (Builder.mk (Opcode.Cmp_fp Opcode.Ps) [ r m; r a; i 1 ]);
  emit ctx (andps (r a) (r m));
  emit ctx (Builder.mk (Opcode.Fandn Opcode.Ps) [ r m; r b ]);
  emit ctx (orps (r a) (r m))

(* rsqrt + Newton step (ray normalisation). *)
let rsqrt_ray ctx =
  let x = vreg ctx in
  let t = vreg ctx in
  emit ctx (Builder.mk (Opcode.Rsqrt Opcode.Ps) [ r t; r x ]);
  emit ctx (mulps (r x) (r t));
  emit ctx (mulps (r x) (r t))

(* Move mask to scalar (early-out tests in vectorised code). *)
let movmsk ctx =
  let dst = scratch ctx in
  emit ctx (movmskps (r (narrow Width.D dst)) (r (vreg ctx)))

(* --- block assembly --------------------------------------------------- *)

type snippet = ctx -> unit

(* Build one block from a weighted snippet mixture. *)
let block ~rng ~(mix : (float * snippet) list) ~min_len ~max_len : Inst.t list =
  let ctx = create rng in
  let target = min_len + Bstats.Rng.int rng (max 1 (max_len - min_len + 1)) in
  while ctx.len < target do
    let snippet = Bstats.Rng.choose_weighted ctx.rng mix in
    snippet ctx
  done;
  finish ctx

(* Zipf-ish execution frequency for tracer-less corpora. *)
let zipf_freq rng ~rank =
  let weight = 100_000.0 /. Float.pow (float_of_int (rank + 1)) 0.6 in
  max 1 (int_of_float weight / (1 + Bstats.Rng.int rng 3))
