(** Assembly of the full benchmark suite.

    The paper's suite holds 358,561 blocks across nine applications; the
    default scale here is 1/100 of the paper's per-application counts so
    that the complete evaluation runs in minutes. Generation is fully
    deterministic in the seed. *)

type config = {
  scale : int;  (** divide paper counts by this factor *)
  seed : int64;
}

let default_config = { scale = 100; seed = 0xB417E_5EEDL }

(* Scale from the BHIVE_SCALE environment variable if present:
   the value is the divisor (1 = full paper-sized corpus). *)
let config_from_env () =
  match Sys.getenv_opt "BHIVE_SCALE" with
  | Some s -> (
    match int_of_string_opt s with
    | Some scale when scale >= 1 -> { default_config with scale }
    | _ -> default_config)
  | None -> default_config

let scaled_count (config : config) (app : Apps.t) =
  max 8 (app.paper_count / config.scale)

(* Generate the corpus of one application. *)
let app_blocks config (app : Apps.t) : Block.t list =
  let rng =
    Bstats.Rng.create
      (Int64.add config.seed (Bstats.Rng.seed_of_string app.name))
  in
  Apps.generate app ~rng ~count:(scaled_count config app)

(* The nine-application suite of Table "apps". *)
let generate ?(config = default_config) () : Block.t list =
  List.concat_map (app_blocks config) Apps.suite_apps

(* Suite plus OpenSSL (used by the per-application error figures). *)
let generate_extended ?(config = default_config) () : Block.t list =
  List.concat_map (app_blocks config) Apps.all_apps

(* Spanner/Dremel case-study corpora. *)
let generate_google ?(config = default_config) () : Block.t list =
  List.concat_map (app_blocks config) Apps.case_study_apps

let count_by_app blocks =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace tbl b.app
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b.app)))
    blocks;
  Hashtbl.fold (fun app n acc -> (app, n) :: acc) tbl []
  |> List.sort compare
