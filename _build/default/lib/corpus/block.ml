(** A basic block in the benchmark suite: the instruction sequence plus
    collection metadata (source application and dynamic execution
    frequency, as recorded by the tracer). *)

open X86

type t = {
  id : string;  (** unique identifier, e.g. "tensorflow/1234" *)
  app : string;  (** source application *)
  insts : Inst.t list;
  freq : int;  (** dynamic execution count (weighted-error weight) *)
}

let make ~id ~app ?(freq = 1) insts = { id; app; insts; freq }

let length t = List.length t.insts

let code_bytes t = Encoder.block_length t.insts

let has_memory_access t = List.exists Inst.has_mem t.insts

let uses_avx2 t = List.exists Inst.requires_avx2 t.insts

let text t = String.concat "\n" (List.map Inst.to_string t.insts)

let pp fmt t =
  Format.fprintf fmt "@[<v>; %s (freq=%d)@,%a@]" t.id t.freq
    (Format.pp_print_list Inst.pp)
    t.insts
