(** Hand-written inner-loop bodies of well-known algorithms, as a
    compiler or kernel author would emit them. These are mixed into the
    application corpora (real suites contain many instances of exactly
    these shapes) and serve as named, stable blocks for tests and
    examples. Every block is directly profilable under the default
    environment. *)

open X86

let parse = Parser.block_exn

(** memcpy, 32 bytes per iteration through XMM registers. *)
let memcpy_sse =
  parse
    {|
      movups (%rsi), %xmm0
      movups 16(%rsi), %xmm1
      movups %xmm0, (%rdi)
      movups %xmm1, 16(%rdi)
      add $32, %rsi
      add $32, %rdi
      cmp %rcx, %rsi
    |}

(** strlen-style scan: compare 16 bytes against zero, extract a mask. *)
let strlen_sse =
  parse
    {|
      movdqa (%rdi), %xmm1
      pcmpeqb %xmm0, %xmm1
      pmovmskb %xmm1, %eax
      add $16, %rdi
      test %eax, %eax
    |}

(** Single-precision dot product with FMA accumulation. *)
let dot_product_fma =
  parse
    {|
      vmovups (%rdi), %ymm1
      vfmadd231ps (%rsi), %ymm1, %ymm0
      add $32, %rdi
      add $32, %rsi
      cmp %rcx, %rdi
    |}

(** saxpy: y[i] += a * x[i], packed single. *)
let saxpy =
  parse
    {|
      movups (%rdi), %xmm1
      mulps %xmm7, %xmm1
      addps (%rsi), %xmm1
      movups %xmm1, (%rsi)
      add $16, %rdi
      add $16, %rsi
      cmp %rcx, %rdi
    |}

(** Hardware-CRC32 loop over 8-byte chunks. *)
let crc32_hw =
  parse
    {|
      crc32q (%rdi), %rax
      add $8, %rdi
      cmp %rcx, %rdi
    |}

(** FNV-1a-style byte hash. *)
let fnv1a =
  parse
    {|
      movzbl (%rdi), %ecx
      xor %rcx, %rax
      imul $0x100000001b3, %rax, %rax
      add $1, %rdi
      cmp %rsi, %rdi
    |}

(** xxHash-style 64-bit mixing round. *)
let xxhash_round =
  parse
    {|
      imul $0x87c37b91, %rdx, %rdx
      rol $31, %rdx
      xor %rdx, %rax
      rol $27, %rax
      lea (%rax, %rax, 4), %rax
      add $0x52dce729, %rax
    |}

(** 4x4 single-precision matrix transpose step (shuffle-heavy). *)
let transpose4x4 =
  parse
    {|
      movaps (%rdi), %xmm0
      movaps 16(%rdi), %xmm1
      movaps %xmm0, %xmm2
      unpcklps %xmm1, %xmm0
      unpckhps %xmm1, %xmm2
      movaps %xmm0, (%rsi)
      movaps %xmm2, 16(%rsi)
      add $32, %rdi
      add $32, %rsi
    |}

(** Horizontal sum of a packed-single accumulator. *)
let horizontal_sum =
  parse
    {|
      movaps %xmm0, %xmm1
      shufps $0xb1, %xmm0, %xmm1
      addps %xmm1, %xmm0
      movaps %xmm0, %xmm1
      shufps $0x4e, %xmm0, %xmm1
      addss %xmm1, %xmm0
    |}

(** Branchless clamp to [lo, hi] (min/max idiom). *)
let clamp_branchless =
  parse
    {|
      maxss %xmm6, %xmm0
      minss %xmm7, %xmm0
      addss %xmm0, %xmm1
    |}

(** memcmp-style 8-byte compare step. *)
let memcmp_step =
  parse
    {|
      movq (%rdi), %rax
      movq (%rsi), %rdx
      xor %rax, %rdx
      add $8, %rdi
      add $8, %rsi
      test %rdx, %rdx
    |}

(** Population-count accumulation loop. *)
let popcount_loop =
  parse
    {|
      popcnt (%rdi), %rax
      add %rax, %rdx
      add $8, %rdi
      cmp %rcx, %rdi
    |}

(** Base64-style lookup translation of 4 bytes. *)
let table_translate =
  parse
    {|
      movzbl (%rdi), %eax
      movzbl 0x40000(%rax), %eax
      movb %al, (%rsi)
      add $1, %rdi
      add $1, %rsi
      cmp %rcx, %rdi
    |}

(** 8-tap FIR filter step with packed multiply-accumulate (codec). *)
let fir_pmaddwd =
  parse
    {|
      movdqu (%rdi), %xmm1
      pmaddwd %xmm7, %xmm1
      paddd %xmm1, %xmm0
      add $16, %rdi
      cmp %rcx, %rdi
    |}

(** Bignum limb addition with carry chain (crypto). *)
let bignum_add =
  parse
    {|
      movq (%rsi), %rax
      addq (%rdi), %rax
      movq %rax, (%rdi)
      movq 8(%rsi), %rax
      adcq 8(%rdi), %rax
      movq %rax, 8(%rdi)
      add $16, %rdi
      add $16, %rsi
    |}

(** ReLU over a vector tile (ML). *)
let relu_tile =
  parse
    {|
      vmovups (%rdi), %ymm1
      vxorps %xmm0, %xmm0, %xmm0
      vmaxps %ymm0, %ymm1, %ymm1
      vmovups %ymm1, (%rdi)
      add $32, %rdi
      cmp %rcx, %rdi
    |}

(** Everything, with names and the application domain each belongs to. *)
let all : (string * string * Inst.t list) list =
  [
    ("memcpy-sse", "llvm", memcpy_sse);
    ("strlen-sse", "redis", strlen_sse);
    ("dot-product-fma", "openblas", dot_product_fma);
    ("saxpy", "openblas", saxpy);
    ("crc32-hw", "gzip", crc32_hw);
    ("fnv1a", "redis", fnv1a);
    ("xxhash-round", "sqlite", xxhash_round);
    ("transpose4x4", "eigen", transpose4x4);
    ("horizontal-sum", "eigen", horizontal_sum);
    ("clamp-branchless", "embree", clamp_branchless);
    ("memcmp-step", "sqlite", memcmp_step);
    ("popcount-loop", "llvm", popcount_loop);
    ("table-translate", "gzip", table_translate);
    ("fir-pmaddwd", "ffmpeg", fir_pmaddwd);
    ("bignum-add", "openssl", bignum_add);
    ("relu-tile", "tensorflow", relu_tile);
  ]

(* Kernels belonging to one application. *)
let for_app name =
  List.filter_map
    (fun (kname, app, insts) -> if app = name then Some (kname, insts) else None)
    all
