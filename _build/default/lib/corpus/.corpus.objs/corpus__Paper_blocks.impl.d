lib/corpus/paper_blocks.ml: Block Buffer Inst Parser Printf X86
