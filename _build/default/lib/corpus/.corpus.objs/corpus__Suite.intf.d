lib/corpus/suite.mli: Apps Block
