lib/corpus/tracer.ml: Array Block Bstats List Printf Program X86
