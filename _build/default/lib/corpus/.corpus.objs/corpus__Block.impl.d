lib/corpus/block.ml: Encoder Format Inst List String X86
