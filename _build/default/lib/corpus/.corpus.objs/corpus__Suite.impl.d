lib/corpus/suite.ml: Apps Block Bstats Hashtbl Int64 List Option Sys
