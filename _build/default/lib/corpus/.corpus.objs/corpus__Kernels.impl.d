lib/corpus/kernels.ml: Inst List Parser X86
