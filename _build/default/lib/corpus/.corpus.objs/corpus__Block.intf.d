lib/corpus/block.mli: Format X86
