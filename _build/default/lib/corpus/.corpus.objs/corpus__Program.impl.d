lib/corpus/program.ml: Array Encoder Inst List Opcode Printf X86
