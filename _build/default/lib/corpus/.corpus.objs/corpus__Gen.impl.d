lib/corpus/gen.ml: Bstats Builder Cond Float Inst List Opcode Reg Width X86
