lib/corpus/apps.ml: Block Bstats Gen Kernels List Printf
