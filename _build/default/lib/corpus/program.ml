(** Synthetic whole programs: a control-flow graph of basic blocks.

    The dynamic tracer ([Tracer]) executes these the way DynamoRIO
    instruments a real binary: it follows edges at run time and records
    every basic block it observes, together with execution counts. *)

open X86

type terminator =
  | Fallthrough  (** run off into the next block *)
  | Jump of int  (** unconditional jump to block index *)
  | Branch of {
      taken : int;  (** target block when the branch is taken *)
      p_taken : float;  (** probability the branch is taken at run time *)
    }
  | Return

type node = {
  body : Inst.t list;  (** straight-line code, no control flow *)
  term : terminator;
}

type t = {
  name : string;
  nodes : node array;  (** entry is node 0 *)
}

let make ~name nodes =
  Array.iteri
    (fun i n ->
      if List.exists (fun (inst : Inst.t) -> Opcode.is_control_flow inst.opcode) n.body
      then invalid_arg (Printf.sprintf "Program.make: control flow inside node %d" i))
    nodes;
  { name; nodes }

(* A simple counted-loop program: preheader, body looping [iters] times
   on average, exit block. *)
let loop ~name ~header ~body ~exit_block ~iters =
  make ~name
    [|
      { body = header; term = Fallthrough };
      {
        body;
        term = Branch { taken = 1; p_taken = 1.0 -. (1.0 /. float_of_int iters) };
      };
      { body = exit_block; term = Return };
    |]

(* Encode every node's body to the byte format the tracer consumes,
   concatenated with terminator markers. *)
let encode (t : t) : (bytes * terminator) array =
  Array.map (fun n -> (Encoder.encode_block n.body, n.term)) t.nodes
