(** Literal basic blocks from the paper, used by the case studies.

    - [division]: the 64/32-bit unsigned division block (Table
      "case-study" row 1; measured 21.62 on Haswell, grossly
      over-predicted by IACA and llvm-mca which confuse it with the
      128/64-bit form).
    - [zero_idiom]: the single vectorised XOR of xmm2 with itself
      (measured 0.25; llvm-mca and OSACA predict a full cycle).
    - [gzip_crc]: the updcrc inner-loop body from Gzip (Figure 1 and the
      mis-scheduling case study; measured 8.25). The lookup-table
      displacement is 8-byte aligned, as gzip's crc_32_tab is.
    - [tensorflow_ablation]: a large vectorised CNN-training block in the
      style of Table "ablation": it cannot run unmapped, streams through
      enough pages to thrash the L1D under fresh-page mapping, produces
      subnormals unless gradual underflow is disabled, and is long enough
      that naive 100x unrolling overflows the L1I cache. *)

open X86

let division : Inst.t list =
  Parser.block_exn {|
    xor edx, edx
    div ecx
    test edx, edx
  |}

let zero_idiom : Inst.t list =
  Parser.block_exn "vxorps %xmm2, %xmm2, %xmm2"

let gzip_crc : Inst.t list =
  Parser.block_exn {|
    add $1, %rdi
    mov %edx, %eax
    shr $8, %rdx
    xorb -1(%rdi), %al
    movzbl %al, %eax
    xorq 0x41108(, %rax, 8), %rdx
    cmp %rcx, %rdi
  |}

let tensorflow_ablation : Inst.t list =
  let b = Buffer.create 4096 in
  (* Eight parallel accumulator chains over streamed inputs; each
     unrolled copy advances the stream pointers by 512 bytes, so the
     fresh-page mapping mode leaves a multi-hundred-KB cache footprint.

     The prelude turns the page-fill pattern (0x12345600 as int32 =
     3.05e8) into t = rcp(cvt(x)) = 3.3e-9; then per chain
     t*t = 1.1e-17, squared = 1.2e-34 (normal), and the final multiply by
     t lands at 3.9e-43 — squarely inside the gradual-underflow range, so
     every chain takes a microcode assist per iteration unless FTZ/DAZ is
     set. With FTZ the value flushes to zero and the chain runs at full
     speed. *)
  Buffer.add_string b "vmovups (%rdi), %ymm0\n";
  Buffer.add_string b "vcvtdq2ps %ymm0, %ymm0\n";
  Buffer.add_string b "vrcpps %ymm0, %ymm0\n";
  for k = 1 to 8 do
    let disp = 32 * k in
    Buffer.add_string b (Printf.sprintf "vmovups %d(%%rdi), %%ymm%d\n" disp k);
    Buffer.add_string b
      (Printf.sprintf "vmulps %%ymm0, %%ymm0, %%ymm%d\n" (7 + k));
    Buffer.add_string b
      (Printf.sprintf "vmulps %%ymm%d, %%ymm%d, %%ymm%d\n" (7 + k) (7 + k) (7 + k));
    Buffer.add_string b
      (Printf.sprintf "vmulps %%ymm0, %%ymm%d, %%ymm%d\n" (7 + k) (7 + k));
    Buffer.add_string b
      (Printf.sprintf "vaddps %d(%%rsi), %%ymm%d, %%ymm%d\n" disp (7 + k) (7 + k));
    Buffer.add_string b
      (Printf.sprintf "vmovups %%ymm%d, %d(%%rdx)\n" (7 + k) disp)
  done;
  Buffer.add_string b "add $512, %rdi\n";
  Buffer.add_string b "add $512, %rsi\n";
  Buffer.add_string b "add $512, %rdx\n";
  Buffer.add_string b "cmp %rcx, %rdi\n";
  Parser.block_exn (Buffer.contents b)

let division_block = Block.make ~id:"paper/division" ~app:"paper" division
let zero_idiom_block = Block.make ~id:"paper/zero-idiom" ~app:"paper" zero_idiom
let gzip_crc_block = Block.make ~id:"paper/gzip-crc" ~app:"paper" gzip_crc

let tensorflow_ablation_block =
  Block.make ~id:"paper/tf-ablation" ~app:"tensorflow" tensorflow_ablation

let case_study = [ division_block; zero_idiom_block; gzip_crc_block ]
