(** A basic block in the benchmark suite: instruction sequence plus
    collection metadata. *)

type t = {
  id : string;  (** unique identifier, e.g. "tensorflow/1234" *)
  app : string;  (** source application *)
  insts : X86.Inst.t list;
  freq : int;  (** dynamic execution count (weighted-error weight) *)
}

val make : id:string -> app:string -> ?freq:int -> X86.Inst.t list -> t

(** Number of instructions. *)
val length : t -> int

(** Code size in bytes under the x86-64 length model (drives the
    instruction-cache footprint of unrolled copies). *)
val code_bytes : t -> int

val has_memory_access : t -> bool

(** Uses AVX2-class instructions (excluded from Ivy Bridge validation). *)
val uses_avx2 : t -> bool

(** The block as newline-separated AT&T assembly. *)
val text : t -> string

val pp : Format.formatter -> t -> unit
