(** Dynamic basic-block tracer.

    Plays the role DynamoRIO plays in the paper's collection pipeline: it
    observes a program's execution at basic-block granularity and records
    each distinct block with its execution count. Blocks are recovered by
    {e decoding the program's code bytes} rather than trusting the
    generator's structures — precise static disassembly of x86 is
    undecidable, which is why BHive collects dynamically in the first
    place; round-tripping through the encoder keeps this honest. *)

type record = {
  block : Block.t;
  count : int;
}

(* Execute the program's control flow (branch outcomes drawn from the
   given RNG) for at most [max_steps] block executions, counting visits. *)
let trace ?(max_steps = 10_000) (rng : Bstats.Rng.t) (program : Program.t) :
    record list =
  let encoded = Program.encode program in
  let counts = Array.make (Array.length encoded) 0 in
  let rec step node steps =
    if steps >= max_steps || node < 0 || node >= Array.length encoded then ()
    else begin
      counts.(node) <- counts.(node) + 1;
      match snd encoded.(node) with
      | Program.Return -> ()
      | Program.Fallthrough -> step (node + 1) (steps + 1)
      | Program.Jump target -> step target (steps + 1)
      | Program.Branch { taken; p_taken } ->
        if Bstats.Rng.float rng < p_taken then step taken (steps + 1)
        else step (node + 1) (steps + 1)
    end
  in
  step 0 0;
  Array.to_list encoded
  |> List.mapi (fun i (bytes, _) -> (i, bytes))
  |> List.filter_map (fun (i, bytes) ->
         if counts.(i) = 0 then None
         else
           let insts = X86.Encoder.decode_block bytes in
           Some
             {
               block =
                 Block.make
                   ~id:(Printf.sprintf "%s/bb%d" program.name i)
                   ~app:program.name ~freq:counts.(i) insts;
               count = counts.(i);
             })

(* Trace several programs and merge the observed blocks. *)
let trace_all ?max_steps rng programs =
  List.concat_map (fun p -> trace ?max_steps rng p) programs
