(** Per-application corpus generators.

    Each source application of the BHive suite is modelled as a weighted
    mixture of domain-characteristic code patterns plus block-shape
    parameters (length range, share of register-only blocks, share of
    large unrolled kernels). Paper block counts are reproduced at a
    configurable scale. *)

type t = {
  name : string;
  domain : string;
  paper_count : int;
  min_len : int;
  max_len : int;
  mem_free_p : float;  (** share of blocks with no memory access *)
  store_block_p : float;  (** share of store-dominated blocks (spills) *)
  load_block_p : float;  (** share of load-dominated blocks (reloads) *)
  large_kernel : (int * int * float) option;
      (** (min_len, max_len, probability): hand-unrolled hot inner loops *)
  mix : (float * Gen.snippet) list;  (** memory-touching mixture *)
  reg_mix : (float * Gen.snippet) list;  (** register-only mixture *)
}

open Gen

(* Register-only scalar mixture shared by the general-purpose apps. *)
let scalar_reg_mix =
  [ (3.0, alu_chain); (1.5, bit_mix); (1.5, cmp_flags); (1.0, test_reg);
    (1.0, mul_pattern); (1.0, lea_addr); (0.6, imm_alu) ]

(* Pure-vector register blocks are rare in practice (the paper's
   Category-2 holds only 0.4% of the suite); register-only blocks in the
   vectorised applications usually mix scalar bookkeeping in. *)
let pure_vector_reg_mix =
  [ (2.0, axpy_reg); (1.5, shuffle_mix); (1.0, relu);
    (1.0, reduce); (1.0, rsqrt_ray) ]

let vector_reg_mix =
  [ (1.2, axpy_reg); (0.8, shuffle_mix); (0.5, relu);
    (0.4, reduce); (0.4, rsqrt_ray); (0.5, movmsk); (2.0, alu_chain);
    (1.2, cmp_flags); (0.8, bit_mix); (0.6, lea_addr) ]

(* General-purpose C/C++ application mixture (loads dominate, pointer
   arithmetic, flag traffic, occasional division and pointer chases). *)
let general_purpose_mix ~chase_w =
  [ (4.2, load); (2.2, load_op); (1.3, fun ctx -> store ctx ());
    (1.2, alu_chain); (1.2, cmp_flags); (0.9, lea_addr); (0.8, test_reg);
    (0.8, pointer_bump); (0.7, stack_spill); (0.6, byte_scan);
    (0.5, rmw_mem); (0.4, store_imm); (0.4, mul_pattern); (0.3, bit_mix);
    (0.12, div_pattern); (chase_w, pointer_chase); (0.04, page_walker) ]

let llvm =
  {
    name = "llvm";
    domain = "Compiler";
    paper_count = 212758;
    min_len = 2;
    max_len = 12;
    mem_free_p = 0.13;
    store_block_p = 0.11;
    load_block_p = 0.17;
    large_kernel = None;
    mix = general_purpose_mix ~chase_w:0.20;
    reg_mix = scalar_reg_mix;
  }

let sqlite =
  {
    name = "sqlite";
    domain = "Database";
    paper_count = 8871;
    min_len = 2;
    max_len = 11;
    mem_free_p = 0.12;
    store_block_p = 0.10;
    load_block_p = 0.16;
    large_kernel = None;
    mix = general_purpose_mix ~chase_w:0.25;
    reg_mix = scalar_reg_mix;
  }

let redis =
  {
    name = "redis";
    domain = "Database";
    paper_count = 9343;
    min_len = 2;
    max_len = 10;
    mem_free_p = 0.11;
    store_block_p = 0.09;
    load_block_p = 0.15;
    large_kernel = None;
    mix =
      (* string-heavy: more byte scans and table hashes *)
      (1.2, byte_scan) :: (0.8, table_lookup)
      :: general_purpose_mix ~chase_w:0.25;
    reg_mix = scalar_reg_mix;
  }

let gzip =
  {
    name = "gzip";
    domain = "Compression";
    paper_count = 2272;
    min_len = 3;
    max_len = 10;
    mem_free_p = 0.12;
    store_block_p = 0.06;
    load_block_p = 0.10;
    large_kernel = None;
    mix =
      [ (2.5, table_lookup); (2.0, bit_mix); (1.5, load); (1.0, byte_scan);
        (1.0, pointer_bump); (0.9, fun ctx -> store ctx ()); (0.8, alu_chain);
        (0.6, cmp_flags); (0.3, rmw_mem); (0.18, pointer_chase) ];
    reg_mix = [ (2.0, bit_mix); (1.5, alu_chain); (1.0, cmp_flags) ];
  }

let openssl =
  {
    name = "openssl";
    domain = "Cryptography";
    paper_count = 5508;
    min_len = 4;
    max_len = 14;
    mem_free_p = 0.15;
    store_block_p = 0.06;
    load_block_p = 0.08;
    large_kernel = Some (24, 48, 0.08);
    mix =
      [ (2.2, adc_bignum); (2.0, bit_mix); (1.2, table_lookup); (1.0, load);
        (1.0, alu_chain); (0.8, fun ctx -> store ctx ());
        (0.6, mul_pattern); (0.5, pointer_bump); (0.10, pointer_chase) ];
    reg_mix = [ (2.5, bit_mix); (2.0, alu_chain); (0.8, mul_pattern) ];
  }

let openblas =
  {
    name = "openblas";
    domain = "Scientific Computing";
    paper_count = 19032;
    min_len = 4;
    max_len = 18;
    mem_free_p = 0.12;
    store_block_p = 0.05;
    load_block_p = 0.10;
    large_kernel = Some (40, 90, 0.18);
    mix =
      [ (2.5, fun ctx -> fma_step ctx ~ymm:true);
        (2.0, fun ctx -> vec_load ctx ~ymm:true ());
        (1.4, fun ctx -> axpy ctx ());
        (1.0, fun ctx -> vec_store ctx ~ymm:true ());
        (0.8, pointer_bump); (0.6, shuffle_mix); (0.5, alu_chain);
        (0.3, fun ctx -> vec_load ctx ~misalign_p:0.015 ());
        (0.2, cmp_flags) ];
    reg_mix = vector_reg_mix;
  }

let eigen =
  {
    name = "eigen";
    domain = "Scientific Computing";
    paper_count = 4545;
    min_len = 3;
    max_len = 14;
    mem_free_p = 0.12;
    store_block_p = 0.06;
    load_block_p = 0.12;
    large_kernel = None;
    mix =
      (* sparse kernels: index loads feeding scalar/vector FP *)
      [ (2.2, scalar_fp); (1.8, load); (1.2, fun ctx -> axpy ctx ());
        (1.0, load_op); (0.9, pointer_bump); (0.8, lea_addr);
        (0.7, fun ctx -> store ctx ()); (0.6, cmp_flags);
        (0.4, cvt_mix); (0.15, pointer_chase) ];
    reg_mix = [ (2.0, scalar_fp_reg); (1.0, alu_chain); (1.0, cmp_flags) ];
  }

let tensorflow =
  {
    name = "tensorflow";
    domain = "Machine Learning";
    paper_count = 71988;
    min_len = 3;
    max_len = 20;
    mem_free_p = 0.12;
    store_block_p = 0.06;
    load_block_p = 0.12;
    large_kernel = Some (36, 80, 0.15);
    mix =
      [ (2.2, fun ctx -> fma_step ctx ~ymm:true);
        (1.8, fun ctx -> vec_load ctx ~ymm:true ());
        (1.2, relu); (1.0, fun ctx -> axpy ctx ());
        (1.0, fun ctx -> vec_store ctx ~ymm:true ());
        (0.9, cvt_mix); (0.8, load); (0.8, pointer_bump); (0.6, alu_chain);
        (0.5, cmp_flags); (0.4, reduce); (0.3, fun ctx -> store ctx ());
        (0.05, pointer_chase) ];
    reg_mix = vector_reg_mix;
  }

let embree =
  {
    name = "embree";
    domain = "Ray Tracing";
    paper_count = 12602;
    min_len = 4;
    max_len = 16;
    mem_free_p = 0.13;
    store_block_p = 0.05;
    load_block_p = 0.10;
    large_kernel = Some (28, 56, 0.10);
    mix =
      [ (2.2, mask_select); (1.8, fun ctx -> vec_load ctx ());
        (1.4, rsqrt_ray); (1.2, fun ctx -> axpy ctx ()); (1.0, relu);
        (0.9, movmsk); (0.8, shuffle_mix); (0.6, cmp_flags);
        (0.5, pointer_bump); (0.4, load); (0.05, pointer_chase) ];
    reg_mix = vector_reg_mix;
  }

let ffmpeg =
  {
    name = "ffmpeg";
    domain = "Multimedia";
    paper_count = 17150;
    min_len = 3;
    max_len = 16;
    mem_free_p = 0.14;
    store_block_p = 0.07;
    load_block_p = 0.10;
    large_kernel = Some (24, 52, 0.10);
    mix =
      [ (2.6, int_simd); (1.6, fun ctx -> vec_load ctx ());
        (1.2, fun ctx -> vec_store ctx ()); (1.0, bit_mix); (0.9, load);
        (0.8, shuffle_mix); (0.8, pointer_bump); (0.6, alu_chain);
        (0.5, table_lookup); (0.4, cmp_flags); (0.06, pointer_chase) ];
    reg_mix = [ (2.0, int_simd); (1.2, shuffle_mix); (1.0, bit_mix); (0.8, alu_chain) ];
  }

(* Google production server workloads (case study): load-dominated with a
   noticeably larger (partially) vectorised share than the open-source
   general-purpose apps. *)
let spanner =
  {
    name = "spanner";
    domain = "Distributed Database";
    paper_count = 100000;
    min_len = 2;
    max_len = 12;
    mem_free_p = 0.12;
    store_block_p = 0.08;
    load_block_p = 0.28;
    large_kernel = None;
    mix =
      [ (4.2, load); (1.8, load_op); (1.2, fun ctx -> store ctx ());
        (1.0, cmp_flags); (0.9, alu_chain); (0.8, lea_addr);
        (0.7, pointer_bump); (0.7, fun ctx -> axpy ctx ());
        (0.5, int_simd); (0.5, byte_scan); (0.4, stack_spill);
        (0.3, table_lookup); (0.28, pointer_chase) ];
    reg_mix = (1.0, axpy_reg) :: scalar_reg_mix;
  }

let dremel =
  {
    name = "dremel";
    domain = "Query Engine";
    paper_count = 100000;
    min_len = 2;
    max_len = 12;
    mem_free_p = 0.10;
    store_block_p = 0.06;
    load_block_p = 0.34;
    large_kernel = None;
    mix =
      [ (5.0, load); (1.6, load_op); (1.0, fun ctx -> store ctx ());
        (1.0, cmp_flags); (0.9, alu_chain); (0.8, fun ctx -> axpy ctx ());
        (0.7, lea_addr); (0.6, pointer_bump); (0.5, int_simd);
        (0.4, bit_mix); (0.28, pointer_chase) ];
    reg_mix = (1.2, axpy_reg) :: scalar_reg_mix;
  }

(* Store- and load-dominated block shapes, shared across applications. *)
let store_block_mix =
  [ (4.0, store_burst); (0.8, pointer_bump); (0.6, alu_chain);
    (0.6, store_imm); (0.4, cmp_flags) ]

let load_block_mix =
  [ (5.0, load_burst); (0.7, lea_addr); (0.6, alu_chain); (0.4, cmp_flags) ]

(* The nine applications of the paper's Table "apps". *)
let suite_apps =
  [ openblas; redis; sqlite; gzip; tensorflow; llvm; eigen; embree; ffmpeg ]

(* OpenSSL appears in the per-application evaluation figures. *)
let all_apps = suite_apps @ [ openssl ]

let case_study_apps = [ spanner; dremel ]

(* Generate [count] blocks for application [t]. *)
let generate (t : t) ~(rng : Bstats.Rng.t) ~count : Block.t list =
  let kernels = Kernels.for_app t.name in
  List.init count (fun i ->
      (* a small share of every application's hot blocks are instances of
         the classic hand-written kernels of its domain *)
      if kernels <> [] && Bstats.Rng.bernoulli rng 0.03 then begin
        let kname, insts = Bstats.Rng.choose rng kernels in
        Block.make
          ~id:(Printf.sprintf "%s/%d:%s" t.name i kname)
          ~app:t.name
          ~freq:(Gen.zipf_freq rng ~rank:i)
          insts
      end
      else
      let shape = Bstats.Rng.float rng in
      let reg_only = shape < t.mem_free_p in
      let store_block = shape >= t.mem_free_p && shape < t.mem_free_p +. t.store_block_p in
      let load_block =
        shape >= t.mem_free_p +. t.store_block_p
        && shape < t.mem_free_p +. t.store_block_p +. t.load_block_p
      in
      let min_len, max_len =
        match t.large_kernel with
        | Some (lo, hi, p) when (not reg_only) && Bstats.Rng.bernoulli rng p ->
          (lo, hi)
        | _ -> (t.min_len, t.max_len)
      in
      let mix =
        if store_block then store_block_mix
        else if load_block then load_block_mix
        else if not reg_only then t.mix
        else if Bstats.Rng.bernoulli rng 0.12 && t.large_kernel <> None then
          (* occasional purely-vector register block (Category-2) *)
          pure_vector_reg_mix
        else t.reg_mix
      in
      let insts = Gen.block ~rng ~mix ~min_len ~max_len in
      Block.make
        ~id:(Printf.sprintf "%s/%d" t.name i)
        ~app:t.name
        ~freq:(Gen.zipf_freq rng ~rank:i)
        insts)
