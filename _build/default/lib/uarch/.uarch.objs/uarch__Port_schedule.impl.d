lib/uarch/port_schedule.ml: Array Hashtbl
