lib/uarch/skylake.ml: Descriptor Port Profile
