lib/uarch/ivybridge.ml: Descriptor Port Profile
