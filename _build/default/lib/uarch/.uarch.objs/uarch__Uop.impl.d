lib/uarch/uop.ml: Format List Port
