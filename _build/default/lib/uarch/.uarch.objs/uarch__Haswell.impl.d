lib/uarch/haswell.ml: Descriptor Port Profile
