lib/uarch/descriptor.ml: Format Profile
