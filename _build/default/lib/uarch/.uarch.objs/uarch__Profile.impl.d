lib/uarch/profile.ml: Inst Int64 List Opcode Operand Port Uop Width X86
