lib/uarch/all.ml: Descriptor Haswell Ivybridge List Skylake
