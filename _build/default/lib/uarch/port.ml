(** Execution ports and port combinations.

    A port combination (e.g. Abel and Reineke's "p0156") is the set of
    ports a micro-op may issue to; it is represented as a bit mask. *)

type t = int  (** single port number, 0-based *)

type set = int  (** bit mask of candidate ports *)

let empty : set = 0
let singleton (p : t) : set = 1 lsl p
let union (a : set) (b : set) : set = a lor b
let inter (a : set) (b : set) : set = a land b
let mem (p : t) (s : set) = s land (1 lsl p) <> 0
let is_empty (s : set) = s = 0

let of_list ps = List.fold_left (fun acc p -> union acc (singleton p)) empty ps

let to_list (s : set) : t list =
  let rec go p acc =
    if p < 0 then acc
    else go (p - 1) (if mem p s then p :: acc else acc)
  in
  go 15 []

let cardinal s = List.length (to_list s)

(* Abel-and-Reineke-style name: p0156. *)
let name (s : set) =
  if is_empty s then "none"
  else "p" ^ String.concat "" (List.map string_of_int (to_list s))

let pp fmt s = Format.pp_print_string fmt (name s)

let equal (a : set) b = a = b
let compare_set (a : set) b = Stdlib.compare a b

(* Common combinations (Haswell/Skylake port numbering). *)
let p0 = singleton 0
let p1 = singleton 1
let p2 = singleton 2
let p3 = singleton 3
let p4 = singleton 4
let p5 = singleton 5
let p6 = singleton 6
let p7 = singleton 7
let p01 = of_list [ 0; 1 ]
let p05 = of_list [ 0; 5 ]
let p06 = of_list [ 0; 6 ]
let p15 = of_list [ 1; 5 ]
let p015 = of_list [ 0; 1; 5 ]
let p0156 = of_list [ 0; 1; 5; 6 ]
let p23 = of_list [ 2; 3 ]
let p237 = of_list [ 2; 3; 7 ]
let p016 = of_list [ 0; 1; 6 ]
