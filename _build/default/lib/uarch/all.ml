(** The modelled microarchitectures, in the paper's evaluation order. *)

let ivy_bridge = Ivybridge.descriptor
let haswell = Haswell.descriptor
let skylake = Skylake.descriptor

let all = [ ivy_bridge; haswell; skylake ]

let by_short s =
  List.find_opt (fun (d : Descriptor.t) -> d.short = s) all
