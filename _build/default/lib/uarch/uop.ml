(** Micro-ops: the unit of execution scheduling. *)

type kind =
  | Exec  (** computation on an execution port *)
  | Load  (** load-pipeline uop (AGU + data return) *)
  | Store_addr  (** store-address generation *)
  | Store_data  (** store-data write *)

type t = {
  kind : kind;
  ports : Port.set;  (** candidate issue ports *)
  latency : int;  (** cycles from issue to result availability *)
}

let exec ?(latency = 1) ports = { kind = Exec; ports; latency }
let load ~latency ports = { kind = Load; ports; latency }
let store_addr ports = { kind = Store_addr; ports; latency = 1 }
let store_data ports = { kind = Store_data; ports; latency = 1 }

let kind_name = function
  | Exec -> "exec"
  | Load -> "load"
  | Store_addr -> "staddr"
  | Store_data -> "stdata"

let pp fmt t =
  Format.fprintf fmt "%s@%a(lat=%d)" (kind_name t.kind) Port.pp t.ports t.latency

(** Decomposition of one instruction into micro-ops. *)
type decomp = {
  uops : t list;  (** unfused-domain uops, program order *)
  fused_slots : int;
      (** fused-domain slots consumed in the front end (micro-fusion makes
          a load-op pair occupy a single slot) *)
  eliminated : bool;
      (** handled at rename (zero idiom, eliminated move): consumes a
          front-end slot but no execution resources and has zero latency *)
}

let decomp ?(eliminated = false) ?fused_slots uops =
  let fused_slots =
    match fused_slots with Some n -> n | None -> max 1 (List.length uops)
  in
  { uops; fused_slots; eliminated }

let total_uops d = List.length d.uops
