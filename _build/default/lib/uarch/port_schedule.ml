(** Per-port issue-slot allocation with backfill.

    Each execution port accepts one micro-op per cycle. A dataflow
    scheduler processing uops in program order must still allow a young,
    early-ready uop to claim a port cycle that precedes slots already
    given to older uops (out-of-order issue). This structure answers
    "first free cycle >= t on port p" in near-constant amortised time via
    a disjoint-set forest over occupied cycles. *)

type t = {
  (* next.(p) maps an occupied cycle to a candidate later cycle; absent
     cycles are free. Path compression keeps chains short. *)
  next : (int, int) Hashtbl.t array;
}

let create ~n_ports = { next = Array.init n_ports (fun _ -> Hashtbl.create 256) }

let rec find tbl c =
  match Hashtbl.find_opt tbl c with
  | None -> c
  | Some c' ->
    let root = find tbl c' in
    if root <> c' then Hashtbl.replace tbl c root;
    root

(** First free cycle >= [ready] on port [p], without claiming it. *)
let peek t ~port ~ready = find t.next.(port) (max 0 ready)

(** Claim [busy] consecutive free cycles, the first starting at or after
    [ready] on [port]; returns the start cycle. *)
let claim t ~port ~ready ~busy =
  let tbl = t.next.(port) in
  let rec find_run start =
    (* verify cells start .. start+busy-1 are all free *)
    let rec check k =
      if k >= busy then None
      else
        let c = find tbl (start + k) in
        if c = start + k then check (k + 1) else Some c
    in
    match check 1 with
    | None -> start
    | Some blocked -> find_run (find tbl blocked)
  in
  let start = find_run (find tbl (max 0 ready)) in
  for c = start to start + busy - 1 do
    Hashtbl.replace tbl c (c + 1)
  done;
  start

let reset t = Array.iter Hashtbl.reset t.next
