(** Unroll-factor selection and throughput derivation. *)

type factors = {
  large : int;
  small : int;  (** 0 under the naive strategy *)
}

(** Smallest factor the adaptive strategy will pick. *)
val minimum_factor : int

(** Choose factors for a block under the given strategy; the adaptive
    strategy scales them to the instruction-cache code budget. *)
val choose : Environment.unroll_strategy -> X86.Inst.t list -> factors

(** cycles(large)/large under the naive strategy, otherwise the
    two-point delta (cycles(large) - cycles(small)) / (large - small). *)
val throughput : factors -> cycles_large:int -> cycles_small:int -> float
