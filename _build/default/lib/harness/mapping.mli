(** The monitor/measure page-mapping algorithm (paper, Figure 2): run the
    unrolled block from a re-initialised state, intercept each page
    fault, map the page, restart; give up on unmappable addresses or
    when the fault budget is exhausted. *)

type failure =
  | Unmappable_address of int64
      (** fault address outside the user-space mappable range *)
  | Too_many_faults of int
  | Arithmetic_fault  (** division by zero: the process dies with SIGFPE *)
  | Mapping_disabled of int64
      (** a fault occurred while running in [No_mapping] mode *)

val failure_to_string : failure -> string

type success = {
  mmu : Memsim.Mmu.t;  (** with all touched pages mapped *)
  steps : Xsem.Executor.step list;  (** the final, complete execution *)
  faults : int;  (** mappings the monitor had to create *)
  distinct_frames : int;  (** 1 under single-physical-page aliasing *)
  events : Xsem.Semantics.event list;
}

(** [run env block ~unroll] maps and executes [unroll] copies of
    [block] under [env]'s mapping mode. *)
val run :
  Environment.t -> X86.Inst.t list -> unroll:int -> (success, failure) result
