(** Unroll-factor selection.

    The naive strategy uses one large factor (typically 100) and divides
    by it; for large basic blocks the unrolled code overflows the L1
    instruction cache and the measurement is rejected by the clean-run
    filter. The two-point strategy measures two factors and uses the
    cycle delta, which stays accurate with much smaller factors; the
    adaptive variant scales the factors to an instruction-cache budget. *)

open X86

type factors = {
  large : int;
  small : int;  (** 0 under the naive strategy *)
}

let minimum_factor = 4

let choose (strategy : Environment.unroll_strategy) (block : Inst.t list) :
    factors =
  match strategy with
  | Environment.Naive u -> { large = max 1 u; small = 0 }
  | Environment.Two_point { large; small } ->
    if large <= small then invalid_arg "Unroll.choose: large <= small";
    { large; small = max 1 small }
  | Environment.Adaptive_two_point { code_budget_bytes } ->
    let bytes = max 1 (Encoder.block_length block) in
    let fit = code_budget_bytes / bytes in
    let large = max minimum_factor (min 100 fit) in
    let small = max (minimum_factor / 2) (large / 2) in
    let small = if small >= large then large - 1 else small in
    { large; small = max 1 small }

(* Derive throughput from the measured cycle counts. *)
let throughput (f : factors) ~cycles_large ~cycles_small =
  if f.small = 0 then float_of_int cycles_large /. float_of_int f.large
  else
    float_of_int (cycles_large - cycles_small)
    /. float_of_int (f.large - f.small)
