lib/harness/mapping.ml: Environment Inst List Memsim Printf X86 Xsem
