lib/harness/environment.ml: Int64
