lib/harness/environment.mli:
