lib/harness/profiler.ml: Bstats Environment Hashtbl Inst Int64 List Mapping Option Pipeline Result String Uarch Unroll X86
