lib/harness/mapping.mli: Environment Memsim X86 Xsem
