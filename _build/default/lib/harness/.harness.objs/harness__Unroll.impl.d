lib/harness/unroll.ml: Encoder Environment Inst X86
