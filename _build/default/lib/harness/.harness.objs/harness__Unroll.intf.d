lib/harness/unroll.mli: Environment X86
