lib/harness/profiler.mli: Environment Mapping Pipeline Uarch Unroll X86
