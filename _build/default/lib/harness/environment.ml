(** Measurement-environment configuration.

    The individual switches correspond to the techniques the paper
    introduces (and ablates in Tables I and II): how faulting pages are
    mapped, whether gradual underflow is disabled, which unrolling
    strategy derives throughput, and the clean-measurement filters. *)

(** How the monitor maps pages the basic block faults on. *)
type mapping_mode =
  | No_mapping
      (** Agner-Fog-style: execute as-is; any memory access crashes
          (ablation baseline, Table I row 1) *)
  | Fresh_pages
      (** map each faulting virtual page to its own physical frame
          (Table II row 2: executes, but cache misses remain) *)
  | Single_physical_page
      (** BHive: alias every faulting virtual page to one frame (all
          accesses hit the same 64 L1D lines) *)

(** How throughput is derived from latency measurements. *)
type unroll_strategy =
  | Naive of int
      (** measure one unroll factor [u], report cycles/u; large blocks
          overflow the L1I cache *)
  | Two_point of { large : int; small : int }
      (** measure two factors and divide the cycle delta by the factor
          delta ("more intelligent unrolling") *)
  | Adaptive_two_point of { code_budget_bytes : int }
      (** Two_point with factors scaled so the unrolled code fits the
          instruction-cache budget *)

type t = {
  mapping : mapping_mode;
  unroll : unroll_strategy;
  fill_value : int32;  (** physical-page fill and register-init constant *)
  max_faults : int;  (** monitor gives up after this many mappings *)
  timings : int;  (** measurements per unrolled block (paper: 16) *)
  min_clean : int;  (** required identical clean timings (paper: 8) *)
  disable_underflow : bool;  (** set MXCSR FTZ/DAZ before measuring *)
  drop_misaligned : bool;  (** reject on MISALIGNED_MEM_REFERENCE > 0 *)
  context_switch_rate : float;
      (** probability a timing run suffers an OS context switch (the
          machines are otherwise quiesced: no hyper-threading, pinned) *)
  noise_seed : int64;
}

(* The paper's production configuration. *)
let default =
  {
    mapping = Single_physical_page;
    unroll = Adaptive_two_point { code_budget_bytes = 24 * 1024 };
    fill_value = 0x12345600l;
    max_faults = 64;
    timings = 16;
    min_clean = 8;
    disable_underflow = true;
    drop_misaligned = true;
    context_switch_rate = 0.08;
    noise_seed = 0xB417EL;
  }

(* Table I row 1: plain latency measurement of the unrolled block. *)
let agner_baseline =
  {
    default with
    mapping = No_mapping;
    unroll = Naive 100;
    disable_underflow = false;
    drop_misaligned = false;
  }

(* Table I row 2: page mapping added, naive unrolling kept. *)
let with_page_mapping = { default with unroll = Naive 100 }

let fill_value_u64 t =
  let v = Int64.logand (Int64.of_int32 t.fill_value) 0xFFFFFFFFL in
  v
