(** Measurement-environment configuration. Every switch corresponds to a
    technique the paper introduces and ablates (Tables I and II). *)

(** How the monitor maps pages the basic block faults on. *)
type mapping_mode =
  | No_mapping
      (** Agner-Fog-style baseline: any memory access crashes *)
  | Fresh_pages
      (** each faulting virtual page gets its own physical frame *)
  | Single_physical_page
      (** BHive: alias every faulting page onto one frame (all accesses
          hit the same 64 L1D lines) *)

(** How throughput is derived from latency measurements. *)
type unroll_strategy =
  | Naive of int  (** cycles(u)/u; large blocks overflow the L1I *)
  | Two_point of { large : int; small : int }
      (** (cycles(u) - cycles(u')) / (u - u') *)
  | Adaptive_two_point of { code_budget_bytes : int }
      (** two-point with factors scaled to an I-cache budget *)

type t = {
  mapping : mapping_mode;
  unroll : unroll_strategy;
  fill_value : int32;  (** page-fill and register-init constant *)
  max_faults : int;  (** monitor gives up after this many mappings *)
  timings : int;  (** measurements per unrolled block (paper: 16) *)
  min_clean : int;  (** required identical clean timings (paper: 8) *)
  disable_underflow : bool;  (** set MXCSR FTZ/DAZ before measuring *)
  drop_misaligned : bool;  (** reject on MISALIGNED_MEM_REFERENCE > 0 *)
  context_switch_rate : float;  (** OS-noise probability per timing *)
  noise_seed : int64;
}

(** The paper's production configuration: single-physical-page mapping,
    adaptive two-point unrolling, FTZ/DAZ, all filters on. *)
val default : t

(** Table I row 1: plain latency measurement of the unrolled block. *)
val agner_baseline : t

(** Table I row 2: page mapping added, naive 100x unrolling kept. *)
val with_page_mapping : t

val fill_value_u64 : t -> int64
