(** The monitor/measure page-mapping algorithm (paper, Figure 2).

    The measuring "process" executes the unrolled basic block from a
    freshly initialised machine state; the monitor intercepts each
    segmentation fault, validates the faulting address, maps the page
    (onto the single shared physical frame, or a fresh frame in the
    ablation mode) and restarts execution from the beginning with all
    registers, memory and flags reinitialised — guaranteeing the final
    measured run computes an identical address trace. *)

open X86

type failure =
  | Unmappable_address of int64
      (** fault address outside the user-space mappable range *)
  | Too_many_faults of int
  | Arithmetic_fault  (** division by zero: the process dies with SIGFPE *)
  | Mapping_disabled of int64
      (** a fault occurred while running in [No_mapping] mode *)

let failure_to_string = function
  | Unmappable_address a -> Printf.sprintf "unmappable address 0x%Lx" a
  | Too_many_faults n -> Printf.sprintf "exceeded max faults (%d)" n
  | Arithmetic_fault -> "SIGFPE (division error)"
  | Mapping_disabled a -> Printf.sprintf "SIGSEGV at 0x%Lx (no mapping)" a

type success = {
  mmu : Memsim.Mmu.t;
  steps : Xsem.Executor.step list;  (** the final, complete execution *)
  faults : int;  (** mappings the monitor had to create *)
  distinct_frames : int;
  events : Xsem.Semantics.event list;
}

(* One fresh measuring-process state, as (re)initialised before every
   (re)start of the unrolled block. *)
let fresh_state (env : Environment.t) =
  let st = Xsem.Machine_state.create () in
  Xsem.Machine_state.init_constant st (Environment.fill_value_u64 env);
  st.ftz <- env.disable_underflow;
  st

let run (env : Environment.t) (block : Inst.t list) ~unroll :
    (success, failure) result =
  let mmu = Memsim.Mmu.create () in
  let phys = Memsim.Mmu.phys mmu in
  (* The shared frame used by Single_physical_page mode. *)
  let shared_pfn = Memsim.Phys_mem.allocate phys in
  Memsim.Phys_mem.fill_const phys shared_pfn env.fill_value;
  let map_fault_page vaddr =
    let vpn = Memsim.Fault.page_of_address vaddr in
    match env.mapping with
    | Environment.Single_physical_page ->
      Memsim.Mmu.map_aliased mmu ~vpn ~pfn:shared_pfn
    | Environment.Fresh_pages ->
      let pfn = Memsim.Mmu.map_fresh mmu vpn in
      Memsim.Phys_mem.fill_const phys pfn env.fill_value
    | Environment.No_mapping -> assert false
  in
  let rec monitor num_faults =
    let st = fresh_state env in
    match Xsem.Executor.run_unrolled st mmu block ~unroll with
    | Xsem.Executor.Completed steps ->
      let events = List.concat_map (fun (s : Xsem.Executor.step) -> s.events) steps in
      if List.mem Xsem.Semantics.Div_by_zero events then Error Arithmetic_fault
      else
        Ok
          {
            mmu;
            steps;
            faults = num_faults;
            distinct_frames = Memsim.Page_table.distinct_frames (Memsim.Mmu.table mmu);
            events;
          }
    | Faulted { fault; steps; _ } ->
      (* A division fault can precede the memory fault. *)
      let events = List.concat_map (fun (s : Xsem.Executor.step) -> s.events) steps in
      if List.mem Xsem.Semantics.Div_by_zero events then Error Arithmetic_fault
      else begin
        let addr = Memsim.Fault.address fault in
        match env.mapping with
        | Environment.No_mapping -> Error (Mapping_disabled addr)
        | Environment.Fresh_pages | Environment.Single_physical_page ->
          if not (Memsim.Fault.is_valid_address addr) then
            Error (Unmappable_address addr)
          else if num_faults >= env.max_faults then
            Error (Too_many_faults env.max_faults)
          else begin
            map_fault_page addr;
            monitor (num_faults + 1)
          end
      end
  in
  monitor 0
