(** The BHive basic-block profiler.

    For each unroll factor the profiler: (1) runs the monitor/measure
    mapping algorithm, (2) replays the final execution through the cycle
    simulator once to warm the caches (the paper's first, discarded
    execution), then (3) takes [env.timings] timed runs, each exposed to
    simulated OS noise. A block is accepted only if at least
    [env.min_clean] timings are clean (no cache misses of any kind, no
    context switches) and identical, and — when the filter is enabled —
    no load or store crossed a cache line. *)

open X86

type reject_reason =
  | Misaligned_access  (** MISALIGNED_MEM_REFERENCE counter non-zero *)
  | Never_clean
      (** no timing met the clean criteria (persistent cache misses) *)
  | Unstable  (** fewer than [min_clean] identical clean timings *)

type failure =
  | Mapping_failed of Mapping.failure
  | Rejected of reject_reason

let failure_to_string = function
  | Mapping_failed f -> "mapping: " ^ Mapping.failure_to_string f
  | Rejected Misaligned_access -> "rejected: misaligned access"
  | Rejected Never_clean -> "rejected: never clean"
  | Rejected Unstable -> "rejected: unstable timings"

type timing = {
  cycles : int;
  counters : Pipeline.Counters.t;
  clean : bool;
}

(* Result of measuring one unrolled instance. *)
type point = {
  unroll : int;
  accepted_cycles : int option;  (** agreed-upon clean cycle count *)
  best_cycles : int;  (** minimum observed, reported even when unclean *)
  timings : timing list;
  faults : int;
  distinct_frames : int;
  counters : Pipeline.Counters.t;  (** from the first timed run *)
}

type profile = {
  throughput : float;
  accepted : bool;
  reject : reject_reason option;
  large : point;
  small : point option;
  factors : Unroll.factors;
}

(* OS / measurement noise model: a context switch pollutes the counters
   and adds many cycles; small timer jitter perturbs the cycle count
   without dirtying the counters. Both are what the 16-timings /
   8-identical-clean rule exists to filter. *)
let apply_noise (env : Environment.t) rng ~cycles
    (counters : Pipeline.Counters.t) =
  let counters = Pipeline.Counters.copy counters in
  let cycles =
    if Bstats.Rng.bernoulli rng env.context_switch_rate then begin
      counters.context_switches <- counters.context_switches + 1;
      cycles + 3000 + Bstats.Rng.int rng 4000
    end
    else cycles
  in
  let cycles =
    if Bstats.Rng.bernoulli rng 0.05 then cycles + 1 + Bstats.Rng.int rng 3
    else cycles
  in
  (cycles, counters)

(* Measure one unroll factor of [block] on [descriptor]. *)
let measure_point (env : Environment.t) (descriptor : Uarch.Descriptor.t) rng
    (block : Inst.t list) ~unroll : (point, Mapping.failure) result =
  match Mapping.run env block ~unroll with
  | Error f -> Error f
  | Ok mapped ->
    let machine = Pipeline.Machine.create descriptor in
    (* Discarded warm-up execution: fills L1D/L1I. *)
    ignore (Pipeline.Machine.run machine mapped.steps);
    (* Steady-state timed executions. The simulated machine is
       deterministic once warm, so one simulation gives the noise-free
       cycle count; each of the [env.timings] measurements then sees its
       own independently sampled OS noise, exactly what the repeat-and-
       filter protocol exists to reject. *)
    let base = Pipeline.Machine.run machine mapped.steps in
    let timings =
      List.init env.timings (fun _ ->
          let cycles, counters =
            apply_noise env rng ~cycles:base.cycles base.counters
          in
          { cycles; counters; clean = Pipeline.Counters.is_clean counters })
    in
    (* Most frequent cycle count among clean timings. *)
    let clean = List.filter (fun t -> t.clean) timings in
    let accepted_cycles =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun t ->
          Hashtbl.replace tbl t.cycles
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t.cycles)))
        clean;
      Hashtbl.fold
        (fun cyc count best ->
          match best with
          | Some (_, bc) when bc >= count -> best
          | _ when count >= env.min_clean -> Some (cyc, count)
          | _ -> best)
        tbl None
      |> Option.map fst
    in
    let best_cycles =
      List.fold_left (fun acc t -> min acc t.cycles) max_int timings
    in
    Ok
      {
        unroll;
        accepted_cycles;
        best_cycles;
        timings;
        faults = mapped.faults;
        distinct_frames = mapped.distinct_frames;
        counters = base.counters;
      }

let profile (env : Environment.t) (descriptor : Uarch.Descriptor.t)
    (block : Inst.t list) : (profile, failure) result =
  let seed =
    Int64.add env.noise_seed
      (Bstats.Rng.seed_of_string
         (String.concat ";" (List.map Inst.to_string block)))
  in
  let rng = Bstats.Rng.create seed in
  let factors = Unroll.choose env.unroll block in
  match measure_point env descriptor rng block ~unroll:factors.large with
  | Error f -> Error (Mapping_failed f)
  | Ok large -> (
    let small =
      if factors.small = 0 then Ok None
      else
        Result.map Option.some
          (measure_point env descriptor rng block ~unroll:factors.small)
    in
    match small with
    | Error f -> Error (Mapping_failed f)
    | Ok small ->
      let cycles_of (p : point) =
        match p.accepted_cycles with Some c -> Some c | None -> None
      in
      let misaligned =
        env.drop_misaligned && large.counters.misaligned_mem_refs > 0
      in
      let accepted_large = cycles_of large in
      let accepted_small = Option.map cycles_of small in
      let all_clean_present =
        accepted_large <> None
        && (match accepted_small with Some None -> false | _ -> true)
      in
      let reject =
        if misaligned then Some Misaligned_access
        else if not all_clean_present then
          if List.exists (fun t -> t.clean) large.timings then Some Unstable
          else Some Never_clean
        else None
      in
      let cl = Option.value accepted_large ~default:large.best_cycles in
      let cs =
        match small with
        | None -> 0
        | Some p -> Option.value p.accepted_cycles ~default:p.best_cycles
      in
      let throughput = Unroll.throughput factors ~cycles_large:cl ~cycles_small:cs in
      Ok
        {
          throughput;
          accepted = reject = None;
          reject;
          large;
          small;
          factors;
        })

(* Throughput if accepted, in the style the dataset stores. *)
let accepted_throughput = function
  | Ok p when p.accepted -> Some p.throughput
  | _ -> None
