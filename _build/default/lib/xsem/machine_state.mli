(** Architectural machine state: general-purpose registers, vector
    registers, RFLAGS, RIP and the MXCSR bits relevant to profiling. *)

type flags = {
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable of_ : bool;
  mutable pf : bool;
  mutable af : bool;
}

type t = {
  gpr : int64 array;  (** 16 roots, full 64-bit values *)
  vec : Bytes.t;  (** 16 vector roots x 32 bytes *)
  flags : flags;
  mutable rip : int64;
  mutable ftz : bool;
      (** MXCSR FTZ+DAZ: flush subnormals to zero (what BHive sets to
          disable gradual underflow during measurement) *)
}

val create : unit -> t
val copy : t -> t
val copy_into : src:t -> dst:t -> unit

val get_gpr64 : t -> X86.Reg.gpr -> int64
val set_gpr64 : t -> X86.Reg.gpr -> int64 -> unit

(** Read a register at its own width, zero-extended to 64 bits. Raises
    for vector registers (use [get_vec]). *)
val get_reg : t -> X86.Reg.t -> int64

(** Write with x86-64 merge rules: 8/16-bit writes merge, 32-bit writes
    zero the upper half, 64-bit writes replace. *)
val set_reg : t -> X86.Reg.t -> int64 -> unit

(** Raw byte contents of a vector register (16 or 32 bytes). *)
val get_vec : t -> X86.Reg.t -> bytes

val set_vec : t -> X86.Reg.t -> bytes -> unit

val get_vec_u64 : t -> int -> lane:int -> int64
val set_vec_u64 : t -> int -> lane:int -> int64 -> unit

(** BHive initialisation: every GPR holds [value], vector registers hold
    the repeating 32-bit pattern, flags cleared. *)
val init_constant : t -> int64 -> unit

val pp : Format.formatter -> t -> unit
