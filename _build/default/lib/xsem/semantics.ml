(** Architectural execution semantics for the modelled x86-64 subset.

    [exec] applies one instruction to a machine state, performing memory
    accesses through the MMU (which may raise [Memsim.Fault.Fault]) and
    reporting micro-architecturally interesting events: subnormal
    floating-point traffic (which causes assists unless FTZ/DAZ is set)
    and division fast paths (zeroed high half). *)

open X86

type event =
  | Subnormal  (** FP operation consumed or produced a subnormal *)
  | Div_fast_path  (** division with zeroed high half of the dividend *)
  | Div_slow_path  (** full-width dividend division *)
  | Div_by_zero  (** #DE; the profiled process would die with SIGFPE *)

exception Div_error

type outcome = {
  accesses : Memsim.Mmu.access list;  (** in program order *)
  events : event list;
}

(* Execution context threaded through helpers of a single [exec] call. *)
type ctx = {
  st : Machine_state.t;
  mmu : Memsim.Mmu.t;
  mutable acc : Memsim.Mmu.access list;
  mutable evs : event list;
}

let event ctx e = ctx.evs <- e :: ctx.evs

(* --- Effective addresses and memory helpers ------------------------- *)

let reg_value ctx (r : Reg.t) =
  match r with
  | Reg.Rip -> ctx.st.rip
  | _ -> Machine_state.get_reg ctx.st r

let effective_address ctx (m : Operand.mem) =
  let base = match m.base with Some b -> reg_value ctx b | None -> 0L in
  let index =
    match m.index with
    | Some i -> Int64.mul (reg_value ctx i) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) m.disp

let read_mem ctx addr size : bytes =
  let data, accesses = Memsim.Mmu.read_bytes ctx.mmu addr size in
  ctx.acc <- List.rev_append accesses ctx.acc;
  data

let write_mem ctx addr (data : bytes) =
  let accesses = Memsim.Mmu.write_bytes ctx.mmu addr data in
  ctx.acc <- List.rev_append accesses ctx.acc

let read_mem_int ctx addr (w : Width.t) : int64 =
  let b = read_mem ctx addr (Width.bytes w) in
  match w with
  | Width.B -> Int64.of_int (Char.code (Bytes.get b 0))
  | Width.W -> Int64.of_int (Bytes.get_uint16_le b 0)
  | Width.D -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b 0)) 0xFFFFFFFFL
  | Width.Q -> Bytes.get_int64_le b 0

let write_mem_int ctx addr (w : Width.t) v =
  let n = Width.bytes w in
  let b = Bytes.create n in
  (match w with
  | Width.B -> Bytes.set b 0 (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | Width.W -> Bytes.set_uint16_le b 0 (Int64.to_int (Int64.logand v 0xFFFFL))
  | Width.D -> Bytes.set_int32_le b 0 (Int64.to_int32 v)
  | Width.Q -> Bytes.set_int64_le b 0 v);
  write_mem ctx addr b

(* Integer source operand value, zero-extended to 64 bits. *)
let src_int ctx w (op : Operand.t) : int64 =
  match op with
  | Operand.Imm v -> Width.truncate w v
  | Operand.Reg r -> Machine_state.get_reg ctx.st r
  | Operand.Mem m -> read_mem_int ctx (effective_address ctx m) w

(* Write an integer destination (register merge rules or memory store). *)
let dst_int ctx w (op : Operand.t) v =
  match op with
  | Operand.Reg r -> Machine_state.set_reg ctx.st r v
  | Operand.Mem m -> write_mem_int ctx (effective_address ctx m) w v
  | Operand.Imm _ -> invalid_arg "Semantics: immediate destination"

(* --- Flags ----------------------------------------------------------- *)

let parity_of v =
  (* PF is set when the low byte has even parity. *)
  let b = Int64.to_int (Int64.logand v 0xFFL) in
  let rec pop n acc = if n = 0 then acc else pop (n lsr 1) (acc lxor (n land 1)) in
  pop b 0 = 0

let set_szp ctx w result =
  let f = ctx.st.flags in
  let r = Width.truncate w result in
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare (Width.sign_extend w r) 0L < 0;
  f.pf <- parity_of r

let set_logic_flags ctx w result =
  let f = ctx.st.flags in
  set_szp ctx w result;
  f.cf <- false;
  f.of_ <- false

(* Flags for a + b (+carry_in) = r at width w. *)
let set_add_flags ctx w a b carry_in r =
  let f = ctx.st.flags in
  set_szp ctx w r;
  let mask = Width.mask w in
  let ua = Int64.logand a mask and ub = Int64.logand b mask in
  let full =
    (* compute the (bits+1)-wide sum via unsigned compare trick *)
    match w with
    | Width.Q ->
      (* carry out iff r < a (unsigned), or r = a and carry_in *)
      let r' = Int64.logand r mask in
      let lt = Int64.unsigned_compare r' ua < 0 in
      lt || (Int64.equal r' ua && carry_in && not (Int64.equal ub 0L))
         || (carry_in && Int64.equal ub (Width.mask w))
    | _ ->
      let sum = Int64.add (Int64.add ua ub) (if carry_in then 1L else 0L) in
      Int64.compare sum mask > 0
  in
  f.cf <- full;
  let sa = Width.sign_extend w a
  and sb = Width.sign_extend w b
  and sr = Width.sign_extend w r in
  f.of_ <-
    (Int64.compare sa 0L >= 0) = (Int64.compare sb 0L >= 0)
    && (Int64.compare sa 0L >= 0) <> (Int64.compare sr 0L >= 0);
  f.af <- false

(* Flags for a - b (- borrow_in) = r at width w. *)
let set_sub_flags ctx w a b borrow_in r =
  let f = ctx.st.flags in
  set_szp ctx w r;
  let mask = Width.mask w in
  let ua = Int64.logand a mask and ub = Int64.logand b mask in
  let borrow =
    Int64.unsigned_compare ua ub < 0
    || (Int64.equal ua ub && borrow_in)
  in
  f.cf <- borrow;
  let sa = Width.sign_extend w a
  and sb = Width.sign_extend w b
  and sr = Width.sign_extend w r in
  f.of_ <-
    (Int64.compare sa 0L >= 0) <> (Int64.compare sb 0L >= 0)
    && (Int64.compare sa 0L >= 0) <> (Int64.compare sr 0L >= 0);
  f.af <- false

let cond_holds ctx c =
  let f = ctx.st.flags in
  Cond.eval c ~cf:f.cf ~zf:f.zf ~sf:f.sf ~of_:f.of_ ~pf:f.pf

(* --- Integer helpers -------------------------------------------------- *)

(* Unsigned 64x64 -> 128 multiply, returning (hi, lo). *)
let umul128 a b =
  let mask32 = 0xFFFFFFFFL in
  let a0 = Int64.logand a mask32 and a1 = Int64.shift_right_logical a 32 in
  let b0 = Int64.logand b mask32 and b1 = Int64.shift_right_logical b 32 in
  let p00 = Int64.mul a0 b0 in
  let p01 = Int64.mul a0 b1 in
  let p10 = Int64.mul a1 b0 in
  let p11 = Int64.mul a1 b1 in
  let mid =
    Int64.add
      (Int64.add (Int64.shift_right_logical p00 32) (Int64.logand p01 mask32))
      (Int64.logand p10 mask32)
  in
  let lo =
    Int64.logor
      (Int64.logand p00 mask32)
      (Int64.shift_left (Int64.logand mid mask32) 32)
  in
  let hi =
    Int64.add
      (Int64.add p11 (Int64.shift_right_logical mid 32))
      (Int64.add (Int64.shift_right_logical p01 32) (Int64.shift_right_logical p10 32))
  in
  (hi, lo)

(* Signed 64x64 -> 128 multiply. *)
let smul128 a b =
  let hi, lo = umul128 a b in
  let hi = if Int64.compare a 0L < 0 then Int64.sub hi b else hi in
  let hi = if Int64.compare b 0L < 0 then Int64.sub hi a else hi in
  (hi, lo)

(* Unsigned 128/64 -> 64 division by schoolbook bit iteration; used only
   on the slow path where the high half is non-zero. *)
let udiv128 ~hi ~lo ~divisor =
  if Int64.equal divisor 0L then raise Div_error;
  if Int64.unsigned_compare hi divisor >= 0 then raise Div_error (* #DE overflow *);
  let rem = ref hi and quo = ref 0L in
  for bit = 63 downto 0 do
    let top = Int64.shift_right_logical !rem 63 in
    rem := Int64.logor (Int64.shift_left !rem 1)
             (Int64.logand (Int64.shift_right_logical lo bit) 1L);
    if (not (Int64.equal top 0L)) || Int64.unsigned_compare !rem divisor >= 0
    then begin
      rem := Int64.sub !rem divisor;
      quo := Int64.logor !quo (Int64.shift_left 1L bit)
    end
  done;
  (!quo, !rem)

let popcount64 v =
  let rec go v acc =
    if Int64.equal v 0L then acc
    else go (Int64.logand v (Int64.sub v 1L)) (acc + 1)
  in
  go v 0

(* CRC-32C (Castagnoli), the polynomial used by the SSE4.2 crc32
   instruction; bitwise reference implementation. *)
let crc32c_byte crc byte =
  let poly = 0x82F63B78l in
  let crc = Int32.logxor crc (Int32.of_int (byte land 0xFF)) in
  let rec go crc k =
    if k = 0 then crc
    else
      let crc =
        if Int32.equal (Int32.logand crc 1l) 1l then
          Int32.logxor (Int32.shift_right_logical crc 1) poly
        else Int32.shift_right_logical crc 1
      in
      go crc (k - 1)
  in
  go crc 8

(* --- Floating point helpers ------------------------------------------ *)

let is_subnormal32 bits =
  let e = Int32.logand bits 0x7F800000l in
  let m = Int32.logand bits 0x007FFFFFl in
  Int32.equal e 0l && not (Int32.equal m 0l)

let is_subnormal64 bits =
  let e = Int64.logand bits 0x7FF0000000000000L in
  let m = Int64.logand bits 0x000FFFFFFFFFFFFFL in
  Int64.equal e 0L && not (Int64.equal m 0L)

(* Apply DAZ: flush subnormal input to zero when FTZ mode is on; record a
   subnormal event otherwise. *)
let daz32 ctx bits =
  if is_subnormal32 bits then
    if ctx.st.ftz then Int32.logand bits 0x80000000l
    else (event ctx Subnormal; bits)
  else bits

let daz64 ctx bits =
  if is_subnormal64 bits then
    if ctx.st.ftz then Int64.logand bits 0x8000000000000000L
    else (event ctx Subnormal; bits)
  else bits

let ftz32 ctx bits =
  if is_subnormal32 bits then
    if ctx.st.ftz then Int32.logand bits 0x80000000l
    else (event ctx Subnormal; bits)
  else bits

let ftz64 ctx bits =
  if is_subnormal64 bits then
    if ctx.st.ftz then Int64.logand bits 0x8000000000000000L
    else (event ctx Subnormal; bits)
  else bits

(* Binary op on float32 bit patterns with DAZ/FTZ handling. *)
let f32_op2 ctx f a b =
  let a = daz32 ctx a and b = daz32 ctx b in
  let r = Int32.bits_of_float (f (Int32.float_of_bits a) (Int32.float_of_bits b)) in
  ftz32 ctx r

let f64_op2 ctx f a b =
  let a = daz64 ctx a and b = daz64 ctx b in
  let r = Int64.bits_of_float (f (Int64.float_of_bits a) (Int64.float_of_bits b)) in
  ftz64 ctx r

let f32_op1 ctx f a =
  let a = daz32 ctx a in
  ftz32 ctx (Int32.bits_of_float (f (Int32.float_of_bits a)))

let f64_op1 ctx f a =
  let a = daz64 ctx a in
  ftz64 ctx (Int64.bits_of_float (f (Int64.float_of_bits a)))

let f32_op3 ctx f a b c =
  let a = daz32 ctx a and b = daz32 ctx b and c = daz32 ctx c in
  let r =
    Int32.bits_of_float
      (f (Int32.float_of_bits a) (Int32.float_of_bits b) (Int32.float_of_bits c))
  in
  ftz32 ctx r

let f64_op3 ctx f a b c =
  let a = daz64 ctx a and b = daz64 ctx b and c = daz64 ctx c in
  let r =
    Int64.bits_of_float
      (f (Int64.float_of_bits a) (Int64.float_of_bits b) (Int64.float_of_bits c))
  in
  ftz64 ctx r

(* --- Vector operand plumbing ----------------------------------------- *)

(* Vector operand as raw bytes of width [n]. *)
let src_vec ctx n (op : Operand.t) : bytes =
  match op with
  | Operand.Reg r ->
    let b = Machine_state.get_vec ctx.st r in
    if Bytes.length b >= n then Bytes.sub b 0 n
    else begin
      (* xmm source consumed by a ymm op: zero-extend *)
      let out = Bytes.make n '\000' in
      Bytes.blit b 0 out 0 (Bytes.length b);
      out
    end
  | Operand.Mem m -> read_mem ctx (effective_address ctx m) n
  | Operand.Imm _ -> invalid_arg "Semantics: immediate vector operand"

let dst_vec ctx (op : Operand.t) (b : bytes) =
  match op with
  | Operand.Reg r ->
    let n = Reg.byte_size r in
    if Bytes.length b = n then Machine_state.set_vec ctx.st r b
    else if Bytes.length b < n then begin
      (* writing 16 bytes to a ymm view: zero upper *)
      let out = Bytes.make n '\000' in
      Bytes.blit b 0 out 0 (Bytes.length b);
      Machine_state.set_vec ctx.st r out
    end
    else Machine_state.set_vec ctx.st r (Bytes.sub b 0 n)
  | Operand.Mem m -> write_mem ctx (effective_address ctx m) b
  | Operand.Imm _ -> invalid_arg "Semantics: immediate vector destination"

(* Vector width of an instruction = size of its destination register, or
   16 for memory-only forms. *)
let vec_width (t : Inst.t) =
  let reg_w =
    List.fold_left
      (fun acc op ->
        match op with
        | Operand.Reg r when Reg.is_vector r -> max acc (Reg.byte_size r)
        | _ -> acc)
      0 t.operands
  in
  if reg_w = 0 then 16 else reg_w

(* Resolve SSE (dst = dst op src) vs AVX (dst = s1 op s2) source pair. *)
let vec_sources ctx n (t : Inst.t) : Operand.t * bytes * bytes =
  match t.operands with
  | [ dst; src ] -> (dst, src_vec ctx n dst, src_vec ctx n src)
  | [ dst; s1; s2 ] -> (dst, src_vec ctx n s1, src_vec ctx n s2)
  | _ -> invalid_arg ("Semantics: bad vector arity for " ^ Inst.to_string t)

(* Same but with a trailing immediate operand. *)
let vec_sources_imm ctx n (t : Inst.t) : Operand.t * bytes * bytes * int =
  match t.operands with
  | [ dst; src; Operand.Imm i ] ->
    (dst, src_vec ctx n dst, src_vec ctx n src, Int64.to_int i land 0xFF)
  | [ dst; s1; s2; Operand.Imm i ] ->
    (dst, src_vec ctx n s1, src_vec ctx n s2, Int64.to_int i land 0xFF)
  | _ -> invalid_arg ("Semantics: bad vector+imm arity for " ^ Inst.to_string t)

let map_lanes32 ctx n f (a : bytes) (b : bytes) =
  let out = Bytes.create n in
  for i = 0 to (n / 4) - 1 do
    let r = f ctx (Bytes.get_int32_le a (4 * i)) (Bytes.get_int32_le b (4 * i)) in
    Bytes.set_int32_le out (4 * i) r
  done;
  out

let map_lanes64 ctx n f (a : bytes) (b : bytes) =
  let out = Bytes.create n in
  for i = 0 to (n / 8) - 1 do
    let r = f ctx (Bytes.get_int64_le a (8 * i)) (Bytes.get_int64_le b (8 * i)) in
    Bytes.set_int64_le out (8 * i) r
  done;
  out

(* Scalar low-lane op: result low lane from f, upper bytes from [a]. *)
let scalar_lane32 ctx f (a : bytes) (b : bytes) =
  let out = Bytes.copy a in
  Bytes.set_int32_le out 0 (f ctx (Bytes.get_int32_le a 0) (Bytes.get_int32_le b 0));
  out

let scalar_lane64 ctx f (a : bytes) (b : bytes) =
  let out = Bytes.copy a in
  Bytes.set_int64_le out 0 (f ctx (Bytes.get_int64_le a 0) (Bytes.get_int64_le b 0));
  out

(* Integer lane binop over arbitrary lane width. *)
let int_lanes lane n f (a : bytes) (b : bytes) =
  let lb = Opcode.int_lane_bytes lane in
  let out = Bytes.create n in
  let get src i =
    match lane with
    | Opcode.I8 -> Int64.of_int (Char.code (Bytes.get src i))
    | Opcode.I16 -> Int64.of_int (Bytes.get_uint16_le src i)
    | Opcode.I32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le src i)) 0xFFFFFFFFL
    | Opcode.I64 -> Bytes.get_int64_le src i
  in
  let set i v =
    match lane with
    | Opcode.I8 -> Bytes.set out i (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | Opcode.I16 -> Bytes.set_uint16_le out i (Int64.to_int (Int64.logand v 0xFFFFL))
    | Opcode.I32 -> Bytes.set_int32_le out i (Int64.to_int32 v)
    | Opcode.I64 -> Bytes.set_int64_le out i v
  in
  let k = ref 0 in
  while !k < n do
    set !k (f (get a !k) (get b !k));
    k := !k + lb
  done;
  out

let lane_sign_extend lane v =
  match lane with
  | Opcode.I8 -> Width.sign_extend Width.B v
  | Opcode.I16 -> Width.sign_extend Width.W v
  | Opcode.I32 -> Width.sign_extend Width.D v
  | Opcode.I64 -> v

(* --- Main dispatcher -------------------------------------------------- *)

let exec (st : Machine_state.t) (mmu : Memsim.Mmu.t) (t : Inst.t) : outcome =
  let ctx = { st; mmu; acc = []; evs = [] } in
  let w = t.width in
  let ops = t.operands in
  let bad () =
    invalid_arg (Printf.sprintf "Semantics.exec: malformed %s" (Inst.to_string t))
  in
  (match (t.opcode, ops) with
  (* ---------------- integer moves ---------------- *)
  | Opcode.Mov, [ dst; src ] -> dst_int ctx w dst (src_int ctx w src)
  | Opcode.Movzx from, [ dst; src ] ->
    let v = src_int ctx from src in
    dst_int ctx w dst v
  | Opcode.Movsx from, [ dst; src ] ->
    let v = Width.sign_extend from (src_int ctx from src) in
    dst_int ctx w dst (Width.truncate w v)
  | Opcode.Movsxd, [ dst; src ] ->
    let v = Width.sign_extend Width.D (src_int ctx Width.D src) in
    dst_int ctx Width.Q dst v
  | Opcode.Lea, [ dst; Operand.Mem m ] ->
    dst_int ctx w dst (Width.truncate w (effective_address ctx m))
  | Opcode.Push, [ src ] ->
    let v = src_int ctx Width.Q src in
    let rsp = Int64.sub (Machine_state.get_reg st Reg.rsp) 8L in
    Machine_state.set_reg st Reg.rsp rsp;
    write_mem_int ctx rsp Width.Q v
  | Opcode.Pop, [ dst ] ->
    let rsp = Machine_state.get_reg st Reg.rsp in
    let v = read_mem_int ctx rsp Width.Q in
    Machine_state.set_reg st Reg.rsp (Int64.add rsp 8L);
    dst_int ctx Width.Q dst v
  | Opcode.Xchg, [ a; b ] ->
    let va = src_int ctx w a and vb = src_int ctx w b in
    dst_int ctx w a vb;
    dst_int ctx w b va
  | Opcode.Cmov c, [ dst; src ] ->
    if cond_holds ctx c then dst_int ctx w dst (src_int ctx w src)
    else if
      (* 32-bit cmov still zeroes the upper half even when not taken *)
      Width.equal w Width.D
    then
      (match dst with
      | Operand.Reg r -> Machine_state.set_reg st r (Machine_state.get_reg st r)
      | _ -> ())
  | Opcode.Set c, [ dst ] ->
    dst_int ctx Width.B dst (if cond_holds ctx c then 1L else 0L)
  (* ---------------- integer ALU ---------------- *)
  | Opcode.Add, [ dst; src ] ->
    let a = src_int ctx w dst and b = src_int ctx w src in
    let r = Width.truncate w (Int64.add a b) in
    set_add_flags ctx w a b false r;
    dst_int ctx w dst r
  | Opcode.Adc, [ dst; src ] ->
    let a = src_int ctx w dst and b = src_int ctx w src in
    let cin = st.flags.cf in
    let r = Width.truncate w (Int64.add (Int64.add a b) (if cin then 1L else 0L)) in
    set_add_flags ctx w a b cin r;
    dst_int ctx w dst r
  | Opcode.Sub, [ dst; src ] ->
    let a = src_int ctx w dst and b = src_int ctx w src in
    let r = Width.truncate w (Int64.sub a b) in
    set_sub_flags ctx w a b false r;
    dst_int ctx w dst r
  | Opcode.Sbb, [ dst; src ] ->
    let a = src_int ctx w dst and b = src_int ctx w src in
    let bin = st.flags.cf in
    let r = Width.truncate w (Int64.sub (Int64.sub a b) (if bin then 1L else 0L)) in
    set_sub_flags ctx w a b bin r;
    dst_int ctx w dst r
  | Opcode.Cmp, [ a; b ] ->
    let va = src_int ctx w a and vb = src_int ctx w b in
    let r = Width.truncate w (Int64.sub va vb) in
    set_sub_flags ctx w va vb false r
  | Opcode.And, [ dst; src ] ->
    let r = Int64.logand (src_int ctx w dst) (src_int ctx w src) in
    set_logic_flags ctx w r;
    dst_int ctx w dst r
  | Opcode.Or, [ dst; src ] ->
    let r = Int64.logor (src_int ctx w dst) (src_int ctx w src) in
    set_logic_flags ctx w r;
    dst_int ctx w dst r
  | Opcode.Xor, [ dst; src ] ->
    let r = Int64.logxor (src_int ctx w dst) (src_int ctx w src) in
    set_logic_flags ctx w r;
    dst_int ctx w dst r
  | Opcode.Test, [ a; b ] ->
    let r = Int64.logand (src_int ctx w a) (src_int ctx w b) in
    set_logic_flags ctx w r
  | Opcode.Inc, [ dst ] ->
    let a = src_int ctx w dst in
    let r = Width.truncate w (Int64.add a 1L) in
    let cf = st.flags.cf in
    set_add_flags ctx w a 1L false r;
    st.flags.cf <- cf (* INC preserves CF *);
    dst_int ctx w dst r
  | Opcode.Dec, [ dst ] ->
    let a = src_int ctx w dst in
    let r = Width.truncate w (Int64.sub a 1L) in
    let cf = st.flags.cf in
    set_sub_flags ctx w a 1L false r;
    st.flags.cf <- cf;
    dst_int ctx w dst r
  | Opcode.Neg, [ dst ] ->
    let a = src_int ctx w dst in
    let r = Width.truncate w (Int64.neg a) in
    set_sub_flags ctx w 0L a false r;
    st.flags.cf <- not (Int64.equal a 0L);
    dst_int ctx w dst r
  | Opcode.Not, [ dst ] ->
    dst_int ctx w dst (Width.truncate w (Int64.lognot (src_int ctx w dst)))
  | Opcode.(Shl | Shr | Sar | Rol | Ror), [ dst; amount ] ->
    let bits = Width.bits w in
    let count =
      Int64.to_int (Int64.logand (src_int ctx Width.B amount)
                      (if Width.equal w Width.Q then 63L else 31L))
    in
    let a = src_int ctx w dst in
    if count <> 0 then begin
      let r =
        match t.opcode with
        | Opcode.Shl -> Int64.shift_left a count
        | Opcode.Shr -> Int64.shift_right_logical (Width.truncate w a) count
        | Opcode.Sar -> Int64.shift_right (Width.sign_extend w a) count
        | Opcode.Rol ->
          let c = count mod bits in
          Int64.logor (Int64.shift_left a c)
            (Int64.shift_right_logical (Width.truncate w a) (bits - c))
        | Opcode.Ror ->
          let c = count mod bits in
          Int64.logor
            (Int64.shift_right_logical (Width.truncate w a) c)
            (Int64.shift_left a (bits - c))
        | _ -> assert false
      in
      let r = Width.truncate w r in
      set_szp ctx w r;
      (* CF = last bit shifted out (approximated for rotates) *)
      st.flags.cf <-
        (match t.opcode with
        | Opcode.Shl -> count <= bits && Int64.equal (Int64.logand (Int64.shift_right_logical a (bits - count)) 1L) 1L
        | Opcode.Shr -> Int64.equal (Int64.logand (Int64.shift_right_logical (Width.truncate w a) (count - 1)) 1L) 1L
        | Opcode.Sar -> Int64.equal (Int64.logand (Int64.shift_right (Width.sign_extend w a) (count - 1)) 1L) 1L
        | _ -> Int64.equal (Int64.logand r 1L) 1L);
      st.flags.of_ <- false;
      dst_int ctx w dst r
    end
  | Opcode.(Shld | Shrd), (dst :: src :: amount :: _) ->
    let bits = Width.bits w in
    let count =
      Int64.to_int (Int64.logand (src_int ctx Width.B amount)
                      (if Width.equal w Width.Q then 63L else 31L))
    in
    if count <> 0 then begin
      let a = Width.truncate w (src_int ctx w dst)
      and b = Width.truncate w (src_int ctx w src) in
      let r =
        if t.opcode = Opcode.Shld then
          Int64.logor (Int64.shift_left a count)
            (Int64.shift_right_logical b (bits - count))
        else
          Int64.logor
            (Int64.shift_right_logical a count)
            (Int64.shift_left b (bits - count))
      in
      let r = Width.truncate w r in
      set_szp ctx w r;
      st.flags.cf <- false;
      st.flags.of_ <- false;
      dst_int ctx w dst r
    end
  | Opcode.Imul_rr, [ dst; src ] ->
    let a = Width.sign_extend w (src_int ctx w dst)
    and b = Width.sign_extend w (src_int ctx w src) in
    let hi, lo = smul128 a b in
    let r = Width.truncate w lo in
    set_szp ctx w r;
    let sr = Width.sign_extend w r in
    let overflow =
      if Width.equal w Width.Q then
        not (Int64.equal hi (Int64.shift_right sr 63))
      else not (Int64.equal (Int64.mul a b) sr)
    in
    st.flags.cf <- overflow;
    st.flags.of_ <- overflow;
    dst_int ctx w dst r
  | Opcode.Imul_rr, [ dst; src; imm ] ->
    let a = Width.sign_extend w (src_int ctx w src)
    and b = Width.sign_extend w (src_int ctx w imm) in
    let r = Width.truncate w (Int64.mul a b) in
    set_szp ctx w r;
    st.flags.cf <- false;
    st.flags.of_ <- false;
    dst_int ctx w dst r
  | Opcode.(Mul_1 | Imul_1), [ src ] ->
    let rax = Machine_state.get_reg st (Reg.Gpr (Reg.RAX, w)) in
    let v = src_int ctx w src in
    let signed = t.opcode = Opcode.Imul_1 in
    let a = if signed then Width.sign_extend w rax else rax
    and b = if signed then Width.sign_extend w v else v in
    (match w with
    | Width.B ->
      let prod = Int64.mul a b in
      Machine_state.set_reg st (Reg.Gpr (Reg.RAX, Width.W)) (Width.truncate Width.W prod)
    | Width.W | Width.D ->
      let prod = Int64.mul a b in
      let bits = Width.bits w in
      Machine_state.set_reg st (Reg.Gpr (Reg.RAX, w)) (Width.truncate w prod);
      Machine_state.set_reg st (Reg.Gpr (Reg.RDX, w))
        (Width.truncate w (Int64.shift_right_logical prod bits))
    | Width.Q ->
      let hi, lo = if signed then smul128 a b else umul128 a b in
      Machine_state.set_reg st Reg.rax lo;
      Machine_state.set_reg st Reg.rdx hi);
    let high_set =
      match w with
      | Width.B ->
        not (Int64.equal (Int64.shift_right_logical (Int64.mul a b) 8) 0L)
      | Width.W | Width.D ->
        not (Int64.equal
               (Width.truncate w (Int64.shift_right_logical (Int64.mul a b) (Width.bits w)))
               0L)
      | Width.Q -> not (Int64.equal (fst (umul128 a b)) 0L)
    in
    st.flags.cf <- high_set;
    st.flags.of_ <- high_set
  | Opcode.(Div | Idiv), [ src ] -> (
    let divisor = src_int ctx w src in
    if Int64.equal divisor 0L then event ctx Div_by_zero
    else
      let rax = Machine_state.get_reg st (Reg.Gpr (Reg.RAX, w)) in
      let rdx =
        if Width.equal w Width.B then
          (* 8-bit divide uses AX as dividend *)
          Int64.shift_right_logical (Machine_state.get_reg st (Reg.Gpr (Reg.RAX, Width.W))) 8
        else Machine_state.get_reg st (Reg.Gpr (Reg.RDX, w))
      in
      let fast = Int64.equal rdx 0L in
      event ctx (if fast then Div_fast_path else Div_slow_path);
      try
        let quotient, remainder =
          match w with
          | Width.Q when t.opcode = Opcode.Div ->
            if fast then (Int64.unsigned_div rax divisor, Int64.unsigned_rem rax divisor)
            else udiv128 ~hi:rdx ~lo:rax ~divisor
          | Width.Q ->
            (* idiv on full 128-bit dividends only supports the common
               sign-extended case (rdx = sign of rax). *)
            let sext = Int64.shift_right rax 63 in
            if Int64.equal rdx sext then
              let d = Width.sign_extend w divisor in
              (Int64.div rax d, Int64.rem rax d)
            else raise Div_error
          | _ ->
            let bits = Width.bits w in
            let dividend = Int64.logor (Int64.shift_left rdx bits) rax in
            if t.opcode = Opcode.Div then begin
              let q = Int64.unsigned_div dividend divisor in
              if Int64.compare q (Width.mask w) > 0 then raise Div_error;
              (q, Int64.unsigned_rem dividend divisor)
            end
            else begin
              let sd = Width.sign_extend w divisor in
              let sdividend =
                if Width.equal w Width.D then
                  Int64.logor (Int64.shift_left rdx 32) rax
                else Width.sign_extend Width.W dividend
              in
              let sdividend =
                if Width.equal w Width.D then sdividend
                else sdividend
              in
              (Int64.div sdividend sd, Int64.rem sdividend sd)
            end
        in
        if Width.equal w Width.B then begin
          Machine_state.set_reg st (Reg.Gpr (Reg.RAX, Width.B)) quotient;
          Machine_state.set_reg st (Reg.Gpr8h Reg.RAX) remainder
        end
        else begin
          Machine_state.set_reg st (Reg.Gpr (Reg.RAX, w)) (Width.truncate w quotient);
          Machine_state.set_reg st (Reg.Gpr (Reg.RDX, w)) (Width.truncate w remainder)
        end
      with Div_error -> event ctx Div_by_zero)
  | Opcode.Cdq, [] ->
    let eax = Machine_state.get_reg st Reg.eax in
    let sign = Int64.shift_right (Width.sign_extend Width.D eax) 63 in
    Machine_state.set_reg st Reg.edx (Width.truncate Width.D sign)
  | Opcode.Cqo, [] ->
    let rax = Machine_state.get_reg st Reg.rax in
    Machine_state.set_reg st Reg.rdx (Int64.shift_right rax 63)
  (* ---------------- bit manipulation ---------------- *)
  | Opcode.(Bsf | Tzcnt), [ dst; src ] ->
    let v = Width.truncate w (src_int ctx w src) in
    let bits = Width.bits w in
    let r =
      if Int64.equal v 0L then (if t.opcode = Opcode.Tzcnt then bits else 0)
      else
        let rec go i = if Int64.equal (Int64.logand (Int64.shift_right_logical v i) 1L) 1L then i else go (i + 1) in
        go 0
    in
    st.flags.zf <- Int64.equal v 0L;
    if not (Int64.equal v 0L) || t.opcode = Opcode.Tzcnt then
      dst_int ctx w dst (Int64.of_int r)
  | Opcode.(Bsr | Lzcnt), [ dst; src ] ->
    let v = Width.truncate w (src_int ctx w src) in
    let bits = Width.bits w in
    st.flags.zf <- Int64.equal v 0L;
    if Int64.equal v 0L then begin
      if t.opcode = Opcode.Lzcnt then dst_int ctx w dst (Int64.of_int bits)
    end
    else begin
      let rec go i = if Int64.equal (Int64.logand (Int64.shift_right_logical v i) 1L) 1L then i else go (i - 1) in
      let msb = go (bits - 1) in
      let r = if t.opcode = Opcode.Bsr then msb else bits - 1 - msb in
      dst_int ctx w dst (Int64.of_int r)
    end
  | Opcode.Popcnt, [ dst; src ] ->
    let v = Width.truncate w (src_int ctx w src) in
    set_logic_flags ctx w v;
    st.flags.zf <- Int64.equal v 0L;
    dst_int ctx w dst (Int64.of_int (popcount64 v))
  | Opcode.Bswap, [ dst ] ->
    let v = Width.truncate w (src_int ctx w dst) in
    let n = Width.bytes w in
    let r = ref 0L in
    for k = 0 to n - 1 do
      let byte = Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL in
      r := Int64.logor !r (Int64.shift_left byte (8 * (n - 1 - k)))
    done;
    dst_int ctx w dst !r
  | Opcode.(Bt | Bts | Btr | Btc), [ dst; src ] ->
    let bits = Width.bits w in
    let idx = Int64.to_int (Int64.logand (src_int ctx w src) (Int64.of_int (bits - 1))) in
    let v = src_int ctx w dst in
    st.flags.cf <- Int64.equal (Int64.logand (Int64.shift_right_logical v idx) 1L) 1L;
    let bit = Int64.shift_left 1L idx in
    (match t.opcode with
    | Opcode.Bts -> dst_int ctx w dst (Int64.logor v bit)
    | Opcode.Btr -> dst_int ctx w dst (Int64.logand v (Int64.lognot bit))
    | Opcode.Btc -> dst_int ctx w dst (Int64.logxor v bit)
    | _ -> ())
  | Opcode.Andn, [ dst; s1; s2 ] ->
    let r = Int64.logand (Int64.lognot (src_int ctx w s1)) (src_int ctx w s2) in
    set_logic_flags ctx w r;
    dst_int ctx w dst (Width.truncate w r)
  | Opcode.Blsi, [ dst; src ] ->
    let v = Width.truncate w (src_int ctx w src) in
    let r = Int64.logand v (Int64.neg v) in
    set_logic_flags ctx w r;
    st.flags.cf <- not (Int64.equal v 0L);
    dst_int ctx w dst (Width.truncate w r)
  | Opcode.Blsr, [ dst; src ] ->
    let v = Width.truncate w (src_int ctx w src) in
    let r = Int64.logand v (Int64.sub v 1L) in
    set_logic_flags ctx w r;
    st.flags.cf <- Int64.equal v 0L;
    dst_int ctx w dst (Width.truncate w r)
  | Opcode.Blsmsk, [ dst; src ] ->
    let v = Width.truncate w (src_int ctx w src) in
    let r = Int64.logxor v (Int64.sub v 1L) in
    set_szp ctx w r;
    dst_int ctx w dst (Width.truncate w r)
  | Opcode.Bextr, [ dst; src; ctl ] ->
    let v = Width.truncate w (src_int ctx w src) in
    let c = src_int ctx w ctl in
    let start = Int64.to_int (Int64.logand c 0xFFL) in
    let len = Int64.to_int (Int64.logand (Int64.shift_right_logical c 8) 0xFFL) in
    let r =
      if start >= 64 || len = 0 then 0L
      else
        let shifted = Int64.shift_right_logical v start in
        if len >= 64 then shifted
        else Int64.logand shifted (Int64.sub (Int64.shift_left 1L len) 1L)
    in
    set_logic_flags ctx w r;
    dst_int ctx w dst (Width.truncate w r)
  | Opcode.Crc32, [ dst; src ] ->
    let acc = Int64.to_int32 (Machine_state.get_reg st (match dst with Operand.Reg r -> r | _ -> bad ())) in
    let v = src_int ctx w src in
    let n = Width.bytes w in
    let crc = ref acc in
    for k = 0 to n - 1 do
      let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL) in
      crc := crc32c_byte !crc byte
    done;
    dst_int ctx Width.D dst (Int64.logand (Int64.of_int32 !crc) 0xFFFFFFFFL)
  | Opcode.Nop, [] -> ()
  | Opcode.(Jmp | Jcc _ | Call | Ret), _ ->
    (* Measured blocks never contain control flow; the tracer interprets
       these itself. Treated as no-ops here. *)
    ()
  (* ---------------- vector moves ---------------- *)
  | Opcode.(Movap _ | Movup _ | Movdqa | Movdqu | Lddqu | Movnt _), [ dst; src ] ->
    let n = vec_width t in
    dst_vec ctx dst (src_vec ctx n src)
  | Opcode.Movs_x p, [ dst; src ] -> (
    let lane = match p with Opcode.Ss -> 4 | _ -> 8 in
    match (dst, src) with
    | Operand.Reg _, Operand.Reg _ ->
      (* merge into low lane *)
      let d = src_vec ctx 16 dst and s = src_vec ctx 16 src in
      let out = Bytes.copy d in
      Bytes.blit s 0 out 0 lane;
      dst_vec ctx dst out
    | Operand.Reg _, Operand.Mem m ->
      let b = read_mem ctx (effective_address ctx m) lane in
      let out = Bytes.make 16 '\000' in
      Bytes.blit b 0 out 0 lane;
      dst_vec ctx dst out
    | Operand.Mem m, _ ->
      let s = src_vec ctx 16 src in
      write_mem ctx (effective_address ctx m) (Bytes.sub s 0 lane)
    | _ -> bad ())
  | Opcode.Movd, [ dst; src ] -> (
    match (dst, src) with
    | Operand.Reg r, _ when Reg.is_vector r ->
      let v = src_int ctx Width.D src in
      let out = Bytes.make 16 '\000' in
      Bytes.set_int32_le out 0 (Int64.to_int32 v);
      dst_vec ctx dst out
    | _, Operand.Reg r when Reg.is_vector r ->
      let s = src_vec ctx 16 src in
      dst_int ctx Width.D dst
        (Int64.logand (Int64.of_int32 (Bytes.get_int32_le s 0)) 0xFFFFFFFFL)
    | _ -> bad ())
  | Opcode.Movq_x, [ dst; src ] -> (
    match (dst, src) with
    | Operand.Reg r, _ when Reg.is_vector r && not (Operand.is_reg src && Reg.is_vector (match src with Operand.Reg x -> x | _ -> assert false)) ->
      let v = src_int ctx Width.Q src in
      let out = Bytes.make 16 '\000' in
      Bytes.set_int64_le out 0 v;
      dst_vec ctx dst out
    | Operand.Reg rd, Operand.Reg rs when Reg.is_vector rd && Reg.is_vector rs ->
      let s = src_vec ctx 16 src in
      let out = Bytes.make 16 '\000' in
      Bytes.blit s 0 out 0 8;
      dst_vec ctx dst out
    | _, Operand.Reg r when Reg.is_vector r ->
      let s = src_vec ctx 16 src in
      dst_int ctx Width.Q dst (Bytes.get_int64_le s 0)
    | _ -> bad ())
  (* ---------------- FP arithmetic ---------------- *)
  | Opcode.(Fadd p | Fsub p | Fmul p | Fdiv p | Fmin p | Fmax p), _ ->
    let f64 a b =
      match t.opcode with
      | Opcode.Fadd _ -> a +. b
      | Opcode.Fsub _ -> a -. b
      | Opcode.Fmul _ -> a *. b
      | Opcode.Fdiv _ -> a /. b
      | Opcode.Fmin _ -> if a < b then a else b
      | Opcode.Fmax _ -> if a > b then a else b
      | _ -> assert false
    in
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let out =
      match p with
      | Opcode.Ss -> scalar_lane32 ctx (fun c x y -> f32_op2 c f64 x y) a b
      | Opcode.Sd -> scalar_lane64 ctx (fun c x y -> f64_op2 c f64 x y) a b
      | Opcode.Ps -> map_lanes32 ctx n (fun c x y -> f32_op2 c f64 x y) a b
      | Opcode.Pd -> map_lanes64 ctx n (fun c x y -> f64_op2 c f64 x y) a b
    in
    dst_vec ctx dst out
  | Opcode.Fsqrt p, [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let out =
      match p with
      | Opcode.Ss ->
        let d = src_vec ctx n dst in
        scalar_lane32 ctx (fun c x _ -> f32_op1 c sqrt x) s d
      | Opcode.Sd ->
        let d = src_vec ctx n dst in
        scalar_lane64 ctx (fun c x _ -> f64_op1 c sqrt x) s d
      | Opcode.Ps -> map_lanes32 ctx n (fun c x _ -> f32_op1 c sqrt x) s s
      | Opcode.Pd -> map_lanes64 ctx n (fun c x _ -> f64_op1 c sqrt x) s s
    in
    dst_vec ctx dst out
  | Opcode.(Rcp p | Rsqrt p), [ dst; src ] ->
    let f x = if t.opcode = Opcode.Rcp p then 1.0 /. x else 1.0 /. sqrt x in
    let n = vec_width t in
    let s = src_vec ctx n src in
    let out =
      match p with
      | Opcode.Ss ->
        let d = src_vec ctx n dst in
        scalar_lane32 ctx (fun c x _ -> f32_op1 c f x) s d
      | _ -> map_lanes32 ctx n (fun c x _ -> f32_op1 c f x) s s
    in
    dst_vec ctx dst out
  | Opcode.(Fand p | Fandn p | For_ p | Fxor p), _ ->
    ignore p;
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let f x y =
      match t.opcode with
      | Opcode.Fand _ -> Int64.logand x y
      | Opcode.Fandn _ -> Int64.logand (Int64.lognot x) y
      | Opcode.For_ _ -> Int64.logor x y
      | Opcode.Fxor _ -> Int64.logxor x y
      | _ -> assert false
    in
    dst_vec ctx dst (map_lanes64 ctx n (fun _ x y -> f x y) a b)
  | Opcode.Ucomis p, [ a; b ] ->
    let va = src_vec ctx 16 a and vb = src_vec ctx 16 b in
    let x, y =
      match p with
      | Opcode.Ss ->
        ( Int32.float_of_bits (daz32 ctx (Bytes.get_int32_le va 0)),
          Int32.float_of_bits (daz32 ctx (Bytes.get_int32_le vb 0)) )
      | _ ->
        ( Int64.float_of_bits (daz64 ctx (Bytes.get_int64_le va 0)),
          Int64.float_of_bits (daz64 ctx (Bytes.get_int64_le vb 0)) )
    in
    let f = st.flags in
    if Float.is_nan x || Float.is_nan y then begin
      f.zf <- true; f.pf <- true; f.cf <- true
    end
    else begin
      f.zf <- x = y;
      f.pf <- false;
      f.cf <- x < y
    end;
    f.of_ <- false;
    f.sf <- false
  | Opcode.Cmp_fp p, _ ->
    let n = vec_width t in
    let dst, a, b, imm = vec_sources_imm ctx n t in
    let pred x y =
      match imm land 7 with
      | 0 -> x = y
      | 1 -> x < y
      | 2 -> x <= y
      | 3 -> Float.is_nan x || Float.is_nan y
      | 4 -> x <> y
      | 5 -> not (x < y)
      | 6 -> not (x <= y)
      | _ -> not (Float.is_nan x || Float.is_nan y)
    in
    let out =
      match p with
      | Opcode.Ss ->
        scalar_lane32 ctx
          (fun _ x y ->
            if pred (Int32.float_of_bits x) (Int32.float_of_bits y) then -1l else 0l)
          a b
      | Opcode.Sd ->
        scalar_lane64 ctx
          (fun _ x y ->
            if pred (Int64.float_of_bits x) (Int64.float_of_bits y) then -1L else 0L)
          a b
      | Opcode.Ps ->
        map_lanes32 ctx n
          (fun _ x y ->
            if pred (Int32.float_of_bits x) (Int32.float_of_bits y) then -1l else 0l)
          a b
      | Opcode.Pd ->
        map_lanes64 ctx n
          (fun _ x y ->
            if pred (Int64.float_of_bits x) (Int64.float_of_bits y) then -1L else 0L)
          a b
    in
    dst_vec ctx dst out
  | Opcode.Haddp p, _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let out = Bytes.create n in
    (match p with
    | Opcode.Ps ->
      let get src i = Int32.float_of_bits (Bytes.get_int32_le src (4 * i)) in
      let lanes = n / 4 in
      let half = lanes / 2 in
      for i = 0 to half - 1 do
        Bytes.set_int32_le out (4 * i)
          (Int32.bits_of_float (get a (2 * i) +. get a ((2 * i) + 1)))
      done;
      for i = 0 to half - 1 do
        Bytes.set_int32_le out (4 * (half + i))
          (Int32.bits_of_float (get b (2 * i) +. get b ((2 * i) + 1)))
      done
    | _ ->
      let get src i = Int64.float_of_bits (Bytes.get_int64_le src (8 * i)) in
      let lanes = n / 8 in
      let half = lanes / 2 in
      for i = 0 to half - 1 do
        Bytes.set_int64_le out (8 * i)
          (Int64.bits_of_float (get a (2 * i) +. get a ((2 * i) + 1)))
      done;
      for i = 0 to half - 1 do
        Bytes.set_int64_le out (8 * (half + i))
          (Int64.bits_of_float (get b (2 * i) +. get b ((2 * i) + 1)))
      done);
    dst_vec ctx dst out
  | Opcode.Round p, _ ->
    let n = vec_width t in
    let dst, a, b, imm = vec_sources_imm ctx n t in
    ignore a;
    let mode x =
      match imm land 3 with
      | 0 -> Float.round x (* nearest-ish *)
      | 1 -> Float.of_int (int_of_float (floor x))
      | 2 -> ceil x
      | _ -> Float.trunc x
    in
    let out =
      match p with
      | Opcode.Ss -> scalar_lane32 ctx (fun c x _ -> f32_op1 c mode x) b b
      | Opcode.Sd -> scalar_lane64 ctx (fun c x _ -> f64_op1 c mode x) b b
      | Opcode.Ps -> map_lanes32 ctx n (fun c x _ -> f32_op1 c mode x) b b
      | Opcode.Pd -> map_lanes64 ctx n (fun c x _ -> f64_op1 c mode x) b b
    in
    dst_vec ctx dst out
  (* ---------------- FMA ---------------- *)
  | Opcode.(Vfmadd (form, p) | Vfmsub (form, p) | Vfnmadd (form, p)), [ dst; s2; s3 ] ->
    let n = vec_width t in
    let d = src_vec ctx n dst and b = src_vec ctx n s2 and c = src_vec ctx n s3 in
    (* operand roles by form: 132: d*c + b; 213: b*d + c; 231: b*c + d *)
    let combine x y z =
      match form with
      | 132 -> (x, z, y)
      | 213 -> (y, x, z)
      | _ -> (y, z, x)
    in
    let apply a b c =
      match t.opcode with
      | Opcode.Vfmadd _ -> (a *. b) +. c
      | Opcode.Vfmsub _ -> (a *. b) -. c
      | _ -> c -. (a *. b)
    in
    let out = Bytes.create n in
    (match p with
    | Opcode.Ss | Opcode.Sd ->
      let bytes = if p = Opcode.Ss then 4 else 8 in
      Bytes.blit d 0 out 0 n;
      if bytes = 4 then begin
        let x, y, z =
          combine (Bytes.get_int32_le d 0) (Bytes.get_int32_le b 0) (Bytes.get_int32_le c 0)
        in
        Bytes.set_int32_le out 0 (f32_op3 ctx apply x y z)
      end
      else begin
        let x, y, z =
          combine (Bytes.get_int64_le d 0) (Bytes.get_int64_le b 0) (Bytes.get_int64_le c 0)
        in
        Bytes.set_int64_le out 0 (f64_op3 ctx apply x y z)
      end
    | Opcode.Ps ->
      for i = 0 to (n / 4) - 1 do
        let x, y, z =
          combine
            (Bytes.get_int32_le d (4 * i))
            (Bytes.get_int32_le b (4 * i))
            (Bytes.get_int32_le c (4 * i))
        in
        Bytes.set_int32_le out (4 * i) (f32_op3 ctx apply x y z)
      done
    | Opcode.Pd ->
      for i = 0 to (n / 8) - 1 do
        let x, y, z =
          combine
            (Bytes.get_int64_le d (8 * i))
            (Bytes.get_int64_le b (8 * i))
            (Bytes.get_int64_le c (8 * i))
        in
        Bytes.set_int64_le out (8 * i) (f64_op3 ctx apply x y z)
      done);
    dst_vec ctx dst out
  (* ---------------- conversions ---------------- *)
  | Opcode.Cvtsi2 p, (dst :: rest) ->
    let src = List.nth rest (List.length rest - 1) in
    let v = Width.sign_extend w (src_int ctx w src) in
    let d = src_vec ctx 16 dst in
    let out = Bytes.copy d in
    (match p with
    | Opcode.Ss -> Bytes.set_int32_le out 0 (Int32.bits_of_float (Int64.to_float v))
    | _ -> Bytes.set_int64_le out 0 (Int64.bits_of_float (Int64.to_float v)));
    dst_vec ctx dst out
  | Opcode.Cvt2si (p, _trunc), [ dst; src ] ->
    let s = src_vec ctx 16 src in
    let x =
      match p with
      | Opcode.Ss -> Int32.float_of_bits (Bytes.get_int32_le s 0)
      | _ -> Int64.float_of_bits (Bytes.get_int64_le s 0)
    in
    let v = if Float.is_nan x then Int64.min_int else Int64.of_float x in
    dst_int ctx w dst (Width.truncate w v)
  | Opcode.Cvtss2sd, [ dst; src ] ->
    let s = src_vec ctx 16 src in
    let d = src_vec ctx 16 dst in
    let out = Bytes.copy d in
    let x = Int32.float_of_bits (daz32 ctx (Bytes.get_int32_le s 0)) in
    Bytes.set_int64_le out 0 (ftz64 ctx (Int64.bits_of_float x));
    dst_vec ctx dst out
  | Opcode.Cvtsd2ss, [ dst; src ] ->
    let s = src_vec ctx 16 src in
    let d = src_vec ctx 16 dst in
    let out = Bytes.copy d in
    let x = Int64.float_of_bits (daz64 ctx (Bytes.get_int64_le s 0)) in
    Bytes.set_int32_le out 0 (ftz32 ctx (Int32.bits_of_float x));
    dst_vec ctx dst out
  | Opcode.Cvtdq2ps, [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let out = Bytes.create n in
    for i = 0 to (n / 4) - 1 do
      Bytes.set_int32_le out (4 * i)
        (Int32.bits_of_float (Int32.to_float (Bytes.get_int32_le s (4 * i))))
    done;
    dst_vec ctx dst out
  | Opcode.(Cvtps2dq | Cvttps2dq), [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let out = Bytes.create n in
    for i = 0 to (n / 4) - 1 do
      let x = Int32.float_of_bits (Bytes.get_int32_le s (4 * i)) in
      let v = if Float.is_nan x then Int32.min_int else Int32.of_float x in
      Bytes.set_int32_le out (4 * i) v
    done;
    dst_vec ctx dst out
  | Opcode.Cvtdq2pd, [ dst; src ] ->
    let s = src_vec ctx 16 src in
    let n = max 16 (vec_width t) in
    let out = Bytes.make n '\000' in
    for i = 0 to (n / 8) - 1 do
      Bytes.set_int64_le out (8 * i)
        (Int64.bits_of_float (Int32.to_float (Bytes.get_int32_le s (4 * i))))
    done;
    dst_vec ctx dst out
  | Opcode.Cvtps2pd, [ dst; src ] ->
    let s = src_vec ctx 16 src in
    let n = max 16 (vec_width t) in
    let out = Bytes.make n '\000' in
    for i = 0 to (n / 8) - 1 do
      let x = Int32.float_of_bits (daz32 ctx (Bytes.get_int32_le s (4 * i))) in
      Bytes.set_int64_le out (8 * i) (Int64.bits_of_float x)
    done;
    dst_vec ctx dst out
  | Opcode.Cvtpd2ps, [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let out = Bytes.make 16 '\000' in
    for i = 0 to (n / 8) - 1 do
      let x = Int64.float_of_bits (daz64 ctx (Bytes.get_int64_le s (8 * i))) in
      Bytes.set_int32_le out (4 * i) (ftz32 ctx (Int32.bits_of_float x))
    done;
    dst_vec ctx dst out
  (* ---------------- shuffles ---------------- *)
  | Opcode.Shufp p, _ ->
    let n = vec_width t in
    let dst, a, b, imm = vec_sources_imm ctx n t in
    let out = Bytes.create n in
    (match p with
    | Opcode.Ps ->
      let sel src k = Bytes.get_int32_le src (4 * ((imm lsr (2 * k)) land 3)) in
      Bytes.set_int32_le out 0 (sel a 0);
      Bytes.set_int32_le out 4 (sel a 1);
      Bytes.set_int32_le out 8 (sel b 2);
      Bytes.set_int32_le out 12 (sel b 3);
      if n = 32 then Bytes.blit out 0 out 16 16
    | _ ->
      let sel src k = Bytes.get_int64_le src (8 * ((imm lsr k) land 1)) in
      Bytes.set_int64_le out 0 (sel a 0);
      Bytes.set_int64_le out 8 (sel b 1);
      if n = 32 then Bytes.blit out 0 out 16 16);
    dst_vec ctx dst out
  | Opcode.(Unpckl p | Unpckh p), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let high = match t.opcode with Opcode.Unpckh _ -> true | _ -> false in
    let out = Bytes.create n in
    (match p with
    | Opcode.Ps ->
      let base = if high then 8 else 0 in
      Bytes.set_int32_le out 0 (Bytes.get_int32_le a base);
      Bytes.set_int32_le out 4 (Bytes.get_int32_le b base);
      Bytes.set_int32_le out 8 (Bytes.get_int32_le a (base + 4));
      Bytes.set_int32_le out 12 (Bytes.get_int32_le b (base + 4));
      if n = 32 then Bytes.blit out 0 out 16 16
    | _ ->
      let base = if high then 8 else 0 in
      Bytes.set_int64_le out 0 (Bytes.get_int64_le a base);
      Bytes.set_int64_le out 8 (Bytes.get_int64_le b base);
      if n = 32 then Bytes.blit out 0 out 16 16);
    dst_vec ctx dst out
  | Opcode.(Punpckl lane | Punpckh lane), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let lb = Opcode.int_lane_bytes lane in
    let high = match t.opcode with Opcode.Punpckh _ -> true | _ -> false in
    let out = Bytes.create n in
    let half = 8 in
    let base = if high then half else 0 in
    let k = ref 0 in
    let i = ref 0 in
    while !k < 16 do
      Bytes.blit a (base + (!i * lb)) out !k lb;
      Bytes.blit b (base + (!i * lb)) out (!k + lb) lb;
      k := !k + (2 * lb);
      incr i
    done;
    if n = 32 then Bytes.blit out 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.Pshufd, _ ->
    let n = vec_width t in
    let dst, _, b, imm = vec_sources_imm ctx n t in
    let out = Bytes.create n in
    for i = 0 to 3 do
      Bytes.set_int32_le out (4 * i)
        (Bytes.get_int32_le b (4 * ((imm lsr (2 * i)) land 3)))
    done;
    if n = 32 then Bytes.blit out 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.Pshufb, _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let out = Bytes.create n in
    for i = 0 to min n 16 - 1 do
      let sel = Char.code (Bytes.get b i) in
      if sel land 0x80 <> 0 then Bytes.set out i '\000'
      else Bytes.set out i (Bytes.get a (sel land 0x0F))
    done;
    if n = 32 then Bytes.blit out 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.Palignr, _ ->
    let n = vec_width t in
    let dst, a, b, imm = vec_sources_imm ctx n t in
    (* concat a:b, shift right by imm bytes, take low 16 *)
    let cat = Bytes.create 32 in
    Bytes.blit b 0 cat 0 16;
    Bytes.blit a 0 cat 16 16;
    let out = Bytes.make n '\000' in
    for i = 0 to 15 do
      let j = i + imm in
      if j < 32 then Bytes.set out i (Bytes.get cat j)
    done;
    if n = 32 then Bytes.blit out 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.(Pslldq | Psrldq), [ dst; Operand.Imm i ] ->
    let n = vec_width t in
    let a = src_vec ctx n dst in
    let shift = Int64.to_int i land 0xFF in
    let out = Bytes.make n '\000' in
    for k = 0 to 15 do
      let j = if t.opcode = Opcode.Pslldq then k - shift else k + shift in
      if j >= 0 && j < 16 then Bytes.set out k (Bytes.get a j)
    done;
    if n = 32 then Bytes.blit out 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.(Packss lane | Packus lane), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let signed = match t.opcode with Opcode.Packss _ -> true | _ -> false in
    let out = Bytes.create n in
    let src_bytes = Opcode.int_lane_bytes lane in
    let dst_bytes = src_bytes / 2 in
    let clamp v =
      if signed then
        let lo = Int64.neg (Int64.shift_left 1L ((8 * dst_bytes) - 1)) in
        let hi = Int64.sub (Int64.shift_left 1L ((8 * dst_bytes) - 1)) 1L in
        if Int64.compare v lo < 0 then lo else if Int64.compare v hi > 0 then hi else v
      else
        let hi = Int64.sub (Int64.shift_left 1L (8 * dst_bytes)) 1L in
        if Int64.compare v 0L < 0 then 0L else if Int64.compare v hi > 0 then hi else v
    in
    let lanes_per_src = 16 / src_bytes in
    let get src i =
      let raw =
        match lane with
        | Opcode.I16 -> Int64.of_int (Bytes.get_uint16_le src (2 * i))
        | _ -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le src (4 * i))) 0xFFFFFFFFL
      in
      lane_sign_extend lane raw
    in
    let set i v =
      match lane with
      | Opcode.I16 -> Bytes.set out i (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
      | _ -> Bytes.set_uint16_le out (2 * i) (Int64.to_int (Int64.logand v 0xFFFFL))
    in
    for i = 0 to lanes_per_src - 1 do
      set i (clamp (get a i));
      set (lanes_per_src + i) (clamp (get b i))
    done;
    if n = 32 then Bytes.blit out 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.Blendp p, _ ->
    let n = vec_width t in
    let dst, a, b, imm = vec_sources_imm ctx n t in
    let lane_bytes = if p = Opcode.Ps then 4 else 8 in
    let out = Bytes.copy a in
    for i = 0 to (n / lane_bytes) - 1 do
      if (imm lsr i) land 1 = 1 then
        Bytes.blit b (i * lane_bytes) out (i * lane_bytes) lane_bytes
    done;
    dst_vec ctx dst out
  (* ---------------- integer vector ---------------- *)
  | Opcode.(Padd lane | Psub lane), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let f x y =
      if (match t.opcode with Opcode.Padd _ -> true | _ -> false) then Int64.add x y
      else Int64.sub x y
    in
    dst_vec ctx dst (int_lanes lane n f a b)
  | Opcode.Pmull lane, _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    dst_vec ctx dst (int_lanes lane n Int64.mul a b)
  | Opcode.Pmuludq, _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let out = Bytes.create n in
    for i = 0 to (n / 16) - 1 do
      for j = 0 to 1 do
        let off = (16 * i) + (8 * j) in
        let x = Int64.logand (Int64.of_int32 (Bytes.get_int32_le a off)) 0xFFFFFFFFL in
        let y = Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xFFFFFFFFL in
        Bytes.set_int64_le out off (Int64.mul x y)
      done
    done;
    dst_vec ctx dst out
  | Opcode.Pmaddwd, _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let out = Bytes.create n in
    for i = 0 to (n / 4) - 1 do
      let g src k =
        Int64.to_int (Width.sign_extend Width.W (Int64.of_int (Bytes.get_uint16_le src k)))
      in
      let v = (g a (4 * i) * g b (4 * i)) + (g a ((4 * i) + 2) * g b ((4 * i) + 2)) in
      Bytes.set_int32_le out (4 * i) (Int32.of_int v)
    done;
    dst_vec ctx dst out
  | Opcode.(Pand | Pandn | Por | Pxor), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let f x y =
      match t.opcode with
      | Opcode.Pand -> Int64.logand x y
      | Opcode.Pandn -> Int64.logand (Int64.lognot x) y
      | Opcode.Por -> Int64.logor x y
      | _ -> Int64.logxor x y
    in
    dst_vec ctx dst (map_lanes64 ctx n (fun _ x y -> f x y) a b)
  | Opcode.(Pcmpeq lane | Pcmpgt lane), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let eq = match t.opcode with Opcode.Pcmpeq _ -> true | _ -> false in
    let f x y =
      let sx = lane_sign_extend lane x and sy = lane_sign_extend lane y in
      let hold = if eq then Int64.equal sx sy else Int64.compare sx sy > 0 in
      if hold then -1L else 0L
    in
    dst_vec ctx dst (int_lanes lane n f a b)
  | Opcode.(Pmaxs lane | Pmins lane | Pmaxu lane | Pminu lane), _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let f x y =
      match t.opcode with
      | Opcode.Pmaxs _ ->
        if Int64.compare (lane_sign_extend lane x) (lane_sign_extend lane y) > 0 then x else y
      | Opcode.Pmins _ ->
        if Int64.compare (lane_sign_extend lane x) (lane_sign_extend lane y) < 0 then x else y
      | Opcode.Pmaxu _ -> if Int64.unsigned_compare x y > 0 then x else y
      | _ -> if Int64.unsigned_compare x y < 0 then x else y
    in
    dst_vec ctx dst (int_lanes lane n f a b)
  | Opcode.Pabs lane, [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let f x _ =
      let sx = lane_sign_extend lane x in
      if Int64.compare sx 0L < 0 then Int64.neg sx else sx
    in
    dst_vec ctx dst (int_lanes lane n f s s)
  | Opcode.Pavg lane, _ ->
    let n = vec_width t in
    let dst, a, b = vec_sources ctx n t in
    let f x y = Int64.shift_right_logical (Int64.add (Int64.add x y) 1L) 1 in
    dst_vec ctx dst (int_lanes lane n f a b)
  | Opcode.(Psll lane | Psrl lane | Psra lane), _ -> (
    let n = vec_width t in
    match t.operands with
    | [ _dst; cnt ] | [ _dst; _; cnt ] ->
      let count =
        match cnt with
        | Operand.Imm v -> Int64.to_int v land 0xFF
        | _ ->
          let c = src_vec ctx 16 cnt in
          Int64.to_int (Int64.logand (Bytes.get_int64_le c 0) 0xFFL)
      in
      let a =
        match t.operands with
        | [ d; _ ] -> src_vec ctx n d
        | [ _; s; _ ] when not (Operand.is_imm cnt) -> src_vec ctx n s
        | [ _; s1; _ ] -> src_vec ctx n s1
        | _ -> bad ()
      in
      let lane_bits = 8 * Opcode.int_lane_bytes lane in
      let f x _ =
        if count >= lane_bits then
          match t.opcode with
          | Opcode.Psra _ ->
            if Int64.compare (lane_sign_extend lane x) 0L < 0 then -1L else 0L
          | _ -> 0L
        else
          match t.opcode with
          | Opcode.Psll _ -> Int64.shift_left x count
          | Opcode.Psrl _ -> Int64.shift_right_logical x count
          | _ -> Int64.shift_right (lane_sign_extend lane x) count
      in
      dst_vec ctx (List.hd t.operands) (int_lanes lane n f a a)
    | _ -> bad ())
  | Opcode.Pmovmskb, [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let r = ref 0L in
    for i = 0 to min n 16 - 1 do
      if Char.code (Bytes.get s i) land 0x80 <> 0 then
        r := Int64.logor !r (Int64.shift_left 1L i)
    done;
    dst_int ctx Width.D dst !r
  | Opcode.Movmsk p, [ dst; src ] ->
    let n = vec_width t in
    let s = src_vec ctx n src in
    let lane_bytes = if p = Opcode.Ps then 4 else 8 in
    let r = ref 0L in
    for i = 0 to (n / lane_bytes) - 1 do
      let sign =
        if lane_bytes = 4 then
          Int32.compare (Bytes.get_int32_le s (4 * i)) 0l < 0
        else Int64.compare (Bytes.get_int64_le s (8 * i)) 0L < 0
      in
      if sign then r := Int64.logor !r (Int64.shift_left 1L i)
    done;
    dst_int ctx Width.D dst !r
  | Opcode.Ptest, [ a; b ] ->
    let n = vec_width t in
    let va = src_vec ctx n a and vb = src_vec ctx n b in
    let and_zero = ref true and andn_zero = ref true in
    for i = 0 to (n / 8) - 1 do
      let x = Bytes.get_int64_le va (8 * i) and y = Bytes.get_int64_le vb (8 * i) in
      if not (Int64.equal (Int64.logand x y) 0L) then and_zero := false;
      if not (Int64.equal (Int64.logand (Int64.lognot x) y) 0L) then andn_zero := false
    done;
    st.flags.zf <- !and_zero;
    st.flags.cf <- !andn_zero;
    st.flags.of_ <- false;
    st.flags.sf <- false;
    st.flags.pf <- false
  | Opcode.Pextr lane, [ dst; src; Operand.Imm i ] ->
    let s = src_vec ctx 16 src in
    let lb = Opcode.int_lane_bytes lane in
    let idx = Int64.to_int i land ((16 / lb) - 1) in
    let v =
      match lane with
      | Opcode.I8 -> Int64.of_int (Char.code (Bytes.get s idx))
      | Opcode.I16 -> Int64.of_int (Bytes.get_uint16_le s (2 * idx))
      | Opcode.I32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le s (4 * idx))) 0xFFFFFFFFL
      | Opcode.I64 -> Bytes.get_int64_le s (8 * idx)
    in
    dst_int ctx (Width.of_bytes (max 4 lb)) dst v
  | Opcode.Pinsr lane, [ dst; src; Operand.Imm i ] ->
    let d = src_vec ctx 16 dst in
    let lb = Opcode.int_lane_bytes lane in
    let idx = Int64.to_int i land ((16 / lb) - 1) in
    let v = src_int ctx (Width.of_bytes (max 1 lb)) src in
    let out = Bytes.copy d in
    (match lane with
    | Opcode.I8 -> Bytes.set out idx (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | Opcode.I16 -> Bytes.set_uint16_le out (2 * idx) (Int64.to_int (Int64.logand v 0xFFFFL))
    | Opcode.I32 -> Bytes.set_int32_le out (4 * idx) (Int64.to_int32 v)
    | Opcode.I64 -> Bytes.set_int64_le out (8 * idx) v);
    dst_vec ctx dst out
  (* ---------------- AVX lane ops ---------------- *)
  | Opcode.Vbroadcast p, [ dst; src ] ->
    let lane = if p = Opcode.Ss then 4 else 8 in
    let v =
      match src with
      | Operand.Mem m -> read_mem ctx (effective_address ctx m) lane
      | _ -> Bytes.sub (src_vec ctx 16 src) 0 lane
    in
    let n = match dst with Operand.Reg r -> Reg.byte_size r | _ -> 16 in
    let out = Bytes.create n in
    let k = ref 0 in
    while !k < n do
      Bytes.blit v 0 out !k lane;
      k := !k + lane
    done;
    dst_vec ctx dst out
  | Opcode.Vinsertf128, [ dst; s1; s2; Operand.Imm i ] ->
    let a = src_vec ctx 32 s1 in
    let b = src_vec ctx 16 s2 in
    let out = Bytes.copy a in
    let off = if Int64.equal (Int64.logand i 1L) 0L then 0 else 16 in
    Bytes.blit b 0 out off 16;
    dst_vec ctx dst out
  | Opcode.Vextractf128, [ dst; src; Operand.Imm i ] ->
    let a = src_vec ctx 32 src in
    let off = if Int64.equal (Int64.logand i 1L) 0L then 0 else 16 in
    dst_vec ctx dst (Bytes.sub a off 16)
  | Opcode.Vperm2f128, [ dst; s1; s2; Operand.Imm i ] ->
    let a = src_vec ctx 32 s1 and b = src_vec ctx 32 s2 in
    let sel ctl =
      if ctl land 8 <> 0 then Bytes.make 16 '\000'
      else
        let src = if ctl land 2 = 0 then a else b in
        Bytes.sub src (if ctl land 1 = 0 then 0 else 16) 16
    in
    let imm = Int64.to_int i in
    let out = Bytes.create 32 in
    Bytes.blit (sel imm) 0 out 0 16;
    Bytes.blit (sel (imm lsr 4)) 0 out 16 16;
    dst_vec ctx dst out
  | Opcode.Vzeroupper, [] ->
    for i = 0 to 15 do
      Machine_state.set_vec_u64 st i ~lane:2 0L;
      Machine_state.set_vec_u64 st i ~lane:3 0L
    done
  | _ -> bad ());
  { accesses = List.rev ctx.acc; events = List.rev ctx.evs }
