lib/xsem/semantics.ml: Bytes Char Cond Float Inst Int32 Int64 List Machine_state Memsim Opcode Operand Printf Reg Width X86
