lib/xsem/machine_state.mli: Bytes Format X86
