lib/xsem/executor.ml: Encoder Inst Int64 List Machine_state Memsim Semantics X86
