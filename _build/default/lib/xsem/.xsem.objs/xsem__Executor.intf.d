lib/xsem/executor.mli: Machine_state Memsim Semantics X86
