lib/xsem/machine_state.ml: Array Bytes Format Int64 List Printf Reg Width X86
