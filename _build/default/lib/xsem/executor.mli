(** Straight-line execution of basic blocks over the architectural
    semantics, with full observability of memory accesses, events, and
    faults. *)

type step = {
  index : int;  (** dynamic index within the run *)
  inst : X86.Inst.t;
  accesses : Memsim.Mmu.access list;
  events : Semantics.event list;
}

type run_result =
  | Completed of step list
  | Faulted of {
      steps : step list;  (** steps completed before the fault *)
      fault : Memsim.Fault.t;
      at : int;  (** index of the faulting instruction *)
    }

(** Execute the instruction list once, mutating [state] and memory. *)
val run :
  Machine_state.t -> Memsim.Mmu.t -> X86.Inst.t list -> run_result

(** Execute [unroll] consecutive copies of the block. *)
val run_unrolled :
  Machine_state.t -> Memsim.Mmu.t -> X86.Inst.t list -> unroll:int -> run_result

val all_accesses : run_result -> Memsim.Mmu.access list
val all_events : run_result -> Semantics.event list
val completed : run_result -> bool
