(** Architectural machine state: general-purpose registers, vector
    registers, RFLAGS, RIP and the MXCSR bits relevant to profiling. *)

open X86

type flags = {
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable of_ : bool;
  mutable pf : bool;
  mutable af : bool;
}

type t = {
  gpr : int64 array;  (** 16 roots, full 64-bit values *)
  vec : Bytes.t;  (** 16 vector roots x 32 bytes *)
  flags : flags;
  mutable rip : int64;
  mutable ftz : bool;
      (** MXCSR FTZ+DAZ: flush subnormal inputs/outputs to zero. BHive
          sets this to disable gradual underflow during measurement. *)
}

let create () =
  {
    gpr = Array.make 16 0L;
    vec = Bytes.make (16 * 32) '\000';
    flags = { cf = false; zf = false; sf = false; of_ = false; pf = false; af = false };
    rip = 0L;
    ftz = false;
  }

let copy t =
  {
    gpr = Array.copy t.gpr;
    vec = Bytes.copy t.vec;
    flags = { t.flags with cf = t.flags.cf };
    rip = t.rip;
    ftz = t.ftz;
  }

let copy_into ~src ~dst =
  Array.blit src.gpr 0 dst.gpr 0 16;
  Bytes.blit src.vec 0 dst.vec 0 (16 * 32);
  dst.flags.cf <- src.flags.cf;
  dst.flags.zf <- src.flags.zf;
  dst.flags.sf <- src.flags.sf;
  dst.flags.of_ <- src.flags.of_;
  dst.flags.pf <- src.flags.pf;
  dst.flags.af <- src.flags.af;
  dst.rip <- src.rip;
  dst.ftz <- src.ftz

(* --- GPR access ----------------------------------------------------- *)

let get_gpr64 t g = t.gpr.(Reg.gpr_index g)
let set_gpr64 t g v = t.gpr.(Reg.gpr_index g) <- v

let get_reg t (r : Reg.t) : int64 =
  match r with
  | Reg.Gpr (g, w) -> Width.truncate w (get_gpr64 t g)
  | Reg.Gpr8h g -> Int64.logand (Int64.shift_right_logical (get_gpr64 t g) 8) 0xFFL
  | Reg.Rip -> t.rip
  | Reg.Xmm _ | Reg.Ymm _ ->
    invalid_arg "Machine_state.get_reg: vector register (use get_vec)"

(* x86-64 merge rules: 8/16-bit writes merge into the old value, 32-bit
   writes zero the upper half, 64-bit writes replace. *)
let set_reg t (r : Reg.t) v =
  match r with
  | Reg.Gpr (g, Width.Q) -> set_gpr64 t g v
  | Reg.Gpr (g, Width.D) -> set_gpr64 t g (Int64.logand v 0xFFFFFFFFL)
  | Reg.Gpr (g, Width.W) ->
    let old = get_gpr64 t g in
    set_gpr64 t g
      (Int64.logor (Int64.logand old 0xFFFFFFFFFFFF0000L) (Int64.logand v 0xFFFFL))
  | Reg.Gpr (g, Width.B) ->
    let old = get_gpr64 t g in
    set_gpr64 t g
      (Int64.logor (Int64.logand old 0xFFFFFFFFFFFFFF00L) (Int64.logand v 0xFFL))
  | Reg.Gpr8h g ->
    let old = get_gpr64 t g in
    set_gpr64 t g
      (Int64.logor
         (Int64.logand old 0xFFFFFFFFFFFF00FFL)
         (Int64.shift_left (Int64.logand v 0xFFL) 8))
  | Reg.Rip -> t.rip <- v
  | Reg.Xmm _ | Reg.Ymm _ ->
    invalid_arg "Machine_state.set_reg: vector register (use set_vec)"

(* --- Vector register access ----------------------------------------- *)

let vec_offset i = i * 32

let vec_index = function
  | Reg.Xmm i | Reg.Ymm i -> i
  | r -> invalid_arg ("Machine_state.vec_index: " ^ Reg.name r)

(* Read the full byte contents of a vector register (16 or 32 bytes). *)
let get_vec t (r : Reg.t) : bytes =
  let i = vec_index r in
  let n = Reg.byte_size r in
  Bytes.sub t.vec (vec_offset i) n

let set_vec t (r : Reg.t) (b : bytes) =
  let i = vec_index r in
  let n = Reg.byte_size r in
  if Bytes.length b <> n then
    invalid_arg
      (Printf.sprintf "Machine_state.set_vec: %d bytes into %s" (Bytes.length b)
         (Reg.name r));
  Bytes.blit b 0 t.vec (vec_offset i) n

let get_vec_u64 t i ~lane = Bytes.get_int64_le t.vec (vec_offset i + (8 * lane))
let set_vec_u64 t i ~lane v = Bytes.set_int64_le t.vec (vec_offset i + (8 * lane)) v

(* --- Initialisation -------------------------------------------------- *)

(* BHive initialises all general-purpose registers with the same
   "moderately sized" constant it fills the physical page with, so that
   any register used as a pointer lands on a mappable address; vector
   registers get the same repeating pattern. *)
let init_constant t value =
  Array.fill t.gpr 0 16 value;
  let v32 = Int64.to_int32 value in
  for i = 0 to (16 * 32 / 4) - 1 do
    Bytes.set_int32_le t.vec (i * 4) v32
  done;
  t.flags.cf <- false;
  t.flags.zf <- false;
  t.flags.sf <- false;
  t.flags.of_ <- false;
  t.flags.pf <- false;
  t.flags.af <- false;
  t.rip <- 0L

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun g ->
      Format.fprintf fmt "%-4s = 0x%016Lx@,"
        (Reg.name (Reg.Gpr (g, Width.Q)))
        (get_gpr64 t g))
    Reg.all_gprs;
  Format.fprintf fmt "flags: cf=%b zf=%b sf=%b of=%b pf=%b@]" t.flags.cf
    t.flags.zf t.flags.sf t.flags.of_ t.flags.pf
