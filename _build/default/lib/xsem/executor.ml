(** Straight-line block execution over the architectural semantics.

    Runs an instruction sequence once (basic blocks contain no control
    flow), collecting every memory access and event. On a memory fault the
    partial trace up to the fault is reported together with the fault —
    exactly the observability the BHive monitor process gets from a
    SIGSEGV. *)

open X86

(* One executed instruction and what it did. *)
type step = {
  index : int;  (** dynamic index within the run *)
  inst : Inst.t;
  accesses : Memsim.Mmu.access list;
  events : Semantics.event list;
}

type run_result =
  | Completed of step list
  | Faulted of {
      steps : step list;  (** steps completed before the fault *)
      fault : Memsim.Fault.t;
      at : int;  (** index of the faulting instruction *)
    }

let run (st : Machine_state.t) (mmu : Memsim.Mmu.t) (insts : Inst.t list) :
    run_result =
  let steps = ref [] in
  let rec go idx = function
    | [] -> Completed (List.rev !steps)
    | inst :: rest -> (
      st.rip <- Int64.add st.rip (Int64.of_int (Encoder.encoded_length inst));
      match Semantics.exec st mmu inst with
      | outcome ->
        steps :=
          { index = idx; inst; accesses = outcome.accesses; events = outcome.events }
          :: !steps;
        go (idx + 1) rest
      | exception Memsim.Fault.Fault f ->
        Faulted { steps = List.rev !steps; fault = f; at = idx })
  in
  go 0 insts

(* Convenience wrapper: execute [unroll] copies of the block. *)
let run_unrolled st mmu insts ~unroll =
  let rec repeat acc n = if n = 0 then acc else repeat (insts :: acc) (n - 1) in
  run st mmu (List.concat (repeat [] unroll))

let all_accesses = function
  | Completed steps -> List.concat_map (fun s -> s.accesses) steps
  | Faulted { steps; _ } -> List.concat_map (fun s -> s.accesses) steps

let all_events = function
  | Completed steps -> List.concat_map (fun s -> s.events) steps
  | Faulted { steps; _ } -> List.concat_map (fun s -> s.events) steps

let completed = function Completed _ -> true | Faulted _ -> false
