(** Set-associative cache model with true-LRU replacement, physically
    indexed and tagged. For 32 KiB / 8-way / 64 B lines the index bits
    lie inside the page offset, making the model behaviourally identical
    to Intel's VIPT L1 — the property BHive's single-physical-page
    aliasing exploits. *)

type t

val create : size_bytes:int -> ways:int -> line_bytes:int -> t

(** Standard Intel L1: 32 KiB, 8-way, 64-byte lines. *)
val l1_default : unit -> t

(** Access one line by index; returns [true] on hit. *)
val access_line : t -> int64 -> bool

(** Access [size] bytes at [addr]; returns the number of line misses
    (0-2: an access crossing a line boundary touches two lines). *)
val access : t -> addr:int64 -> size:int -> int

(** Does this access cross a cache-line boundary (the event counted by
    MISALIGNED_MEM_REFERENCE)? *)
val crosses_line : t -> addr:int64 -> size:int -> bool

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit

(** Invalidate all lines and reset statistics. *)
val flush : t -> unit
