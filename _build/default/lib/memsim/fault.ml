(** Memory faults raised by the simulated MMU, mirroring the signals a
    real profiled process would receive. *)

type t =
  | Segfault of int64  (** access to an unmapped virtual address *)
  | Non_canonical of int64
      (** address outside the 47-bit user-space range; cannot be mapped *)

exception Fault of t

let address = function Segfault a | Non_canonical a -> a

let pp fmt = function
  | Segfault a -> Format.fprintf fmt "SIGSEGV at 0x%Lx" a
  | Non_canonical a -> Format.fprintf fmt "non-canonical address 0x%Lx" a

let to_string t = Format.asprintf "%a" pp t

(* User-space mappable range check, as performed by the BHive monitor
   before attempting an mmap: the zero page is never mappable and the
   address must fit in the 47-bit positive user-space half. *)
let page_size = 4096
let page_bits = 12

let is_valid_address addr =
  Int64.compare addr (Int64.of_int page_size) >= 0
  && Int64.compare addr 0x7FFF_FFFF_F000L < 0

let page_of_address addr = Int64.shift_right_logical addr page_bits
let address_of_page page = Int64.shift_left page page_bits
let offset_in_page addr = Int64.to_int (Int64.logand addr 0xFFFL)
