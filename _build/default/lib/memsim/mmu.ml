(** Simulated MMU: translates virtual addresses through the page table,
    raises faults for unmapped or non-canonical accesses, and performs the
    actual data movement against physical memory.

    Cache behaviour is deliberately {e not} modelled here — the pipeline
    simulator replays the recorded physical access trace against its own
    cache models, exactly as the real machine overlaps architectural
    execution and cache timing. *)

type t = {
  phys : Phys_mem.t;
  table : Page_table.t;
}

type access = {
  vaddr : int64;
  paddr : int64;
  size : int;
  is_store : bool;
}

let create () = { phys = Phys_mem.create (); table = Page_table.create () }

let phys t = t.phys
let table t = t.table

(* Translate one byte address; raises [Fault.Fault] when unmapped. *)
let translate t vaddr =
  if not (Fault.is_valid_address vaddr) then
    raise (Fault.Fault (Fault.Non_canonical vaddr));
  let vpn = Fault.page_of_address vaddr in
  match Page_table.translate_page t.table vpn with
  | Some pfn ->
    Int64.add (Fault.address_of_page pfn) (Int64.of_int (Fault.offset_in_page vaddr))
  | None -> raise (Fault.Fault (Fault.Segfault vaddr))

(* Byte-wise rw crossing page boundaries correctly. *)
let read_bytes t vaddr size : bytes * access list =
  let out = Bytes.create size in
  let accesses = ref [] in
  let first_paddr = ref None in
  for k = 0 to size - 1 do
    let va = Int64.add vaddr (Int64.of_int k) in
    let pa = translate t va in
    if !first_paddr = None then first_paddr := Some pa;
    let pfn = Fault.page_of_address pa and off = Fault.offset_in_page pa in
    Bytes.set out k (Char.chr (Phys_mem.read_byte t.phys pfn off))
  done;
  (match !first_paddr with
  | Some paddr ->
    accesses := [ { vaddr; paddr; size; is_store = false } ]
  | None -> ());
  (out, !accesses)

let write_bytes t vaddr (data : bytes) : access list =
  let size = Bytes.length data in
  let first_paddr = ref None in
  for k = 0 to size - 1 do
    let va = Int64.add vaddr (Int64.of_int k) in
    let pa = translate t va in
    if !first_paddr = None then first_paddr := Some pa;
    let pfn = Fault.page_of_address pa and off = Fault.offset_in_page pa in
    Phys_mem.write_byte t.phys pfn off (Char.code (Bytes.get data k))
  done;
  match !first_paddr with
  | Some paddr -> [ { vaddr; paddr; size; is_store = true } ]
  | None -> []

let read_u64 t vaddr =
  let b, _ = read_bytes t vaddr 8 in
  Bytes.get_int64_le b 0

let write_u64 t vaddr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  ignore (write_bytes t vaddr b)

(* Map virtual page [vpn] to a dedicated fresh frame (conventional mmap). *)
let map_fresh t vpn =
  let pfn = Phys_mem.allocate t.phys in
  Page_table.map t.table ~vpn ~pfn;
  pfn

(* Map virtual page [vpn] onto an existing frame (BHive aliasing). *)
let map_aliased t ~vpn ~pfn = Page_table.map t.table ~vpn ~pfn

let unmap_all t = Page_table.unmap_all t.table
