(** Per-process virtual→physical page mapping.

    Supports both conventional mappings (each virtual page gets its own
    frame) and BHive's trick of aliasing many virtual pages onto one
    physical frame. *)

type t = { entries : (int64, int64) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let translate_page t vpn = Hashtbl.find_opt t.entries vpn

let map t ~vpn ~pfn = Hashtbl.replace t.entries vpn pfn

let unmap t vpn = Hashtbl.remove t.entries vpn

let unmap_all t = Hashtbl.reset t.entries

let is_mapped t vpn = Hashtbl.mem t.entries vpn

let mapped_pages t =
  Hashtbl.fold (fun vpn pfn acc -> (vpn, pfn) :: acc) t.entries []
  |> List.sort compare

let count t = Hashtbl.length t.entries

(* Number of distinct physical frames currently mapped; equals 1 when the
   BHive single-physical-page aliasing is in effect. *)
let distinct_frames t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter (fun _ pfn -> Hashtbl.replace seen pfn ()) t.entries;
  Hashtbl.length seen
