(** Physical memory: a sparse collection of 4 KiB frames addressed by
    physical page number. *)

type t = {
  frames : (int64, bytes) Hashtbl.t;
  mutable next_free : int64;  (** simple bump allocator for fresh frames *)
}

let create () = { frames = Hashtbl.create 64; next_free = 0x100L }

let allocate t =
  let pfn = t.next_free in
  t.next_free <- Int64.add t.next_free 1L;
  Hashtbl.replace t.frames pfn (Bytes.make Fault.page_size '\000');
  pfn

let frame t pfn =
  match Hashtbl.find_opt t.frames pfn with
  | Some b -> b
  | None ->
    (* Touching an unallocated frame is an internal logic error, not a
       simulated fault: the MMU only hands out allocated frames. *)
    invalid_arg (Printf.sprintf "Phys_mem.frame: unallocated pfn 0x%Lx" pfn)

let mem t pfn = Hashtbl.mem t.frames pfn

(* Fill a frame with a repeating 32-bit little-endian constant; BHive
   initialises its single physical page with 0x12345600 so that loaded
   values are themselves plausible, mappable pointers. *)
let fill_const t pfn value32 =
  let b = frame t pfn in
  for i = 0 to (Fault.page_size / 4) - 1 do
    Bytes.set_int32_le b (i * 4) value32
  done

let read_byte t pfn offset = Char.code (Bytes.get (frame t pfn) offset)
let write_byte t pfn offset v = Bytes.set (frame t pfn) offset (Char.chr (v land 0xFF))

let clear t =
  Hashtbl.reset t.frames;
  t.next_free <- 0x100L
