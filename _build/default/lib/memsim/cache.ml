(** Set-associative cache model with true-LRU replacement.

    The model is physically indexed and physically tagged, which for the
    L1 caches of the modelled microarchitectures (32 KiB, 8-way, 64 B
    lines: 64 sets, index bits 6..11) is behaviourally identical to
    Intel's virtually-indexed/physically-tagged design, because the index
    bits lie entirely within the page offset. This is exactly the property
    BHive exploits: aliasing every virtual page onto one physical frame
    makes all accesses hit the same 64 physical lines. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  (* tags.(set) is an array of line tags, -1L when invalid;
     lru.(set).(way) is the last-use stamp. *)
  tags : int64 array array;
  lru : int array array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~ways ~line_bytes =
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by ways*line";
  let sets = size_bytes / (ways * line_bytes) in
  {
    sets;
    ways;
    line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1L));
    lru = Array.init sets (fun _ -> Array.make ways 0);
    clock = 0;
    hits = 0;
    misses = 0;
  }

(* Standard Intel L1: 32 KiB, 8-way, 64-byte lines. *)
let l1_default () = create ~size_bytes:(32 * 1024) ~ways:8 ~line_bytes:64

let line_of_addr t addr = Int64.div addr (Int64.of_int t.line_bytes)

let set_of_line t line = Int64.to_int (Int64.rem line (Int64.of_int t.sets))

(* Access one line; returns true on hit. *)
let access_line t line =
  t.clock <- t.clock + 1;
  let set = set_of_line t line in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  let rec find w =
    if w >= t.ways then None
    else if Int64.equal tags.(w) line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    lru.(w) <- t.clock;
    t.hits <- t.hits + 1;
    true
  | None ->
    (* Evict the least recently used way. *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    lru.(!victim) <- t.clock;
    t.misses <- t.misses + 1;
    false

(** Access [size] bytes at physical address [addr]; returns the number of
    line misses (0, 1 or 2 — an access crossing a line boundary touches
    two lines, the event BHive's MISALIGNED_MEM_REFERENCE filter
    detects). *)
let access t ~addr ~size =
  let first = line_of_addr t addr in
  let last = line_of_addr t (Int64.add addr (Int64.of_int (max 1 size - 1))) in
  let misses = ref 0 in
  let line = ref first in
  while Int64.compare !line last <= 0 do
    if not (access_line t !line) then incr misses;
    line := Int64.add !line 1L
  done;
  !misses

let crosses_line t ~addr ~size =
  let first = line_of_addr t addr in
  let last = line_of_addr t (Int64.add addr (Int64.of_int (max 1 size - 1))) in
  Int64.compare first last < 0

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1L)) t.tags;
  Array.iter (fun set -> Array.fill set 0 (Array.length set) 0) t.lru;
  t.clock <- 0;
  reset_stats t
