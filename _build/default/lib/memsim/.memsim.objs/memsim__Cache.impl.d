lib/memsim/cache.ml: Array Int64
