lib/memsim/phys_mem.ml: Bytes Char Fault Hashtbl Int64 Printf
