lib/memsim/mmu.ml: Bytes Char Fault Int64 Page_table Phys_mem
