lib/memsim/cache.mli:
