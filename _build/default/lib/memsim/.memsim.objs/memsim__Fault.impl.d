lib/memsim/fault.ml: Format Int64
