lib/memsim/page_table.ml: Hashtbl List
