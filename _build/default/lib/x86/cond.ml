(** x86 condition codes, as used by Jcc / CMOVcc / SETcc. *)

type t =
  | O   (** overflow *)
  | NO
  | B_  (** below (CF=1); underscore avoids clash with byte width *)
  | AE
  | E
  | NE
  | BE
  | A
  | S
  | NS
  | P
  | NP
  | L
  | GE
  | LE
  | G

let all = [ O; NO; B_; AE; E; NE; BE; A; S; NS; P; NP; L; GE; LE; G ]

let to_string = function
  | O -> "o"
  | NO -> "no"
  | B_ -> "b"
  | AE -> "ae"
  | E -> "e"
  | NE -> "ne"
  | BE -> "be"
  | A -> "a"
  | S -> "s"
  | NS -> "ns"
  | P -> "p"
  | NP -> "np"
  | L -> "l"
  | GE -> "ge"
  | LE -> "le"
  | G -> "g"

let of_string = function
  | "o" -> Some O
  | "no" -> Some NO
  | "b" | "c" | "nae" -> Some B_
  | "ae" | "nb" | "nc" -> Some AE
  | "e" | "z" -> Some E
  | "ne" | "nz" -> Some NE
  | "be" | "na" -> Some BE
  | "a" | "nbe" -> Some A
  | "s" -> Some S
  | "ns" -> Some NS
  | "p" | "pe" -> Some P
  | "np" | "po" -> Some NP
  | "l" | "nge" -> Some L
  | "ge" | "nl" -> Some GE
  | "le" | "ng" -> Some LE
  | "g" | "nle" -> Some G
  | _ -> None

let equal (a : t) b = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Numeric encoding used by the binary encoder (matches hardware cc field). *)
let to_int = function
  | O -> 0
  | NO -> 1
  | B_ -> 2
  | AE -> 3
  | E -> 4
  | NE -> 5
  | BE -> 6
  | A -> 7
  | S -> 8
  | NS -> 9
  | P -> 10
  | NP -> 11
  | L -> 12
  | GE -> 13
  | LE -> 14
  | G -> 15

let of_int = function
  | 0 -> O
  | 1 -> NO
  | 2 -> B_
  | 3 -> AE
  | 4 -> E
  | 5 -> NE
  | 6 -> BE
  | 7 -> A
  | 8 -> S
  | 9 -> NS
  | 10 -> P
  | 11 -> NP
  | 12 -> L
  | 13 -> GE
  | 14 -> LE
  | 15 -> G
  | n -> invalid_arg (Printf.sprintf "Cond.of_int: %d" n)

(* Evaluate the condition against flag values. *)
let eval t ~cf ~zf ~sf ~of_ ~pf =
  match t with
  | O -> of_
  | NO -> not of_
  | B_ -> cf
  | AE -> not cf
  | E -> zf
  | NE -> not zf
  | BE -> cf || zf
  | A -> not (cf || zf)
  | S -> sf
  | NS -> not sf
  | P -> pf
  | NP -> not pf
  | L -> sf <> of_
  | GE -> sf = of_
  | LE -> zf || sf <> of_
  | G -> not zf && sf = of_
