(** Decoded x86-64 instructions.

    Operands are stored in Intel order (destination first); the printer
    emits AT&T syntax by reversing them. [width] is the integer operation
    width; vector operations derive their width from the register operands
    instead. *)

type t = {
  opcode : Opcode.t;
  width : Width.t;
  operands : Operand.t list;
}

let make ?(width = Width.Q) opcode operands = { opcode; width; operands }

let equal a b =
  Opcode.equal a.opcode b.opcode
  && Width.equal a.width b.width
  && List.length a.operands = List.length b.operands
  && List.for_all2 Operand.equal a.operands b.operands

(** How an instruction uses each of its explicit operands, in operand
    order. *)
type access = Read | Write | Read_write

let is_avx_3op t =
  (* AVX non-destructive three-operand form: dst, src1, src2 where dst is
     write-only. Distinguished from e.g. three-operand shifts by opcode. *)
  match (t.opcode, t.operands) with
  | ( ( Opcode.Fadd _ | Fsub _ | Fmul _ | Fdiv _ | Fmin _ | Fmax _ | Fand _
      | Fandn _ | For_ _ | Fxor _ | Padd _ | Psub _ | Pmull _ | Pmuludq
      | Pmaddwd | Pand | Pandn | Por | Pxor | Pcmpeq _ | Pcmpgt _ | Pmaxs _
      | Pmins _ | Pmaxu _ | Pminu _ | Pavg _ | Psll _ | Psrl _ | Psra _
      | Punpckl _ | Punpckh _ | Packss _ | Packus _ | Shufp _ | Unpckl _
      | Unpckh _ | Haddp _ | Pshufb | Palignr | Cmp_fp _ ),
      [ _; _; _ ] ) -> true
  | (Opcode.Shufp _ | Cmp_fp _ | Palignr | Blendp _), [ _; _; _; _ ] -> true
  | _ -> false

(* Access pattern for each explicit operand. *)
let operand_access t : access list =
  let n = List.length t.operands in
  let default_rmw () =
    match n with
    | 1 -> [ Read_write ]
    | 2 -> [ Read_write; Read ]
    | 3 -> [ Read_write; Read; Read ]
    | _ -> List.init n (fun i -> if i = 0 then Read_write else Read)
  in
  let dst_write () = List.init n (fun i -> if i = 0 then Write else Read) in
  let all_read () = List.init n (fun _ -> Read) in
  match t.opcode with
  | Mov | Movzx _ | Movsx _ | Movsxd | Lea | Set _ | Movap _ | Movup _
  | Movdqa | Movdqu | Movd | Movq_x | Lddqu | Movnt _ | Pshufd | Pmovmskb
  | Movmsk _ | Pextr _ | Cvtss2sd | Cvtsd2ss | Cvtdq2ps | Cvtps2dq
  | Cvttps2dq | Cvtdq2pd | Cvtps2pd | Cvtpd2ps | Cvt2si _ | Round _ | Rcp _
  | Rsqrt _ | Fsqrt _ | Pabs _ | Vbroadcast _ | Vextractf128 | Bsf | Bsr
  | Popcnt | Lzcnt | Tzcnt | Andn | Blsi | Blsr | Blsmsk | Bextr | Pop ->
    dst_write ()
  | Cmp | Test | Ucomis _ | Ptest | Bt | Push | Jmp | Jcc _ | Call
  (* the explicit operand of widening multiply/divide is a pure source;
     the implicit rax/rdx pair carries the read-write state *)
  | Div | Idiv | Mul_1 | Imul_1 ->
    all_read ()
  | Cmov _ -> [ Read_write; Read ]
  | Xchg -> [ Read_write; Read_write ]
  | Imul_rr when n = 3 -> [ Write; Read; Read ]
  | Vfmadd _ | Vfmsub _ | Vfnmadd _ -> [ Read_write; Read; Read ]
  | Vinsertf128 | Vperm2f128 -> dst_write ()
  | Cvtsi2 _ when n = 3 -> [ Write; Read; Read ]
  | Cvtsi2 _ -> [ Read_write; Read ]
  | Movs_x _ -> (
    (* Register-to-register scalar moves merge into the destination. *)
    match t.operands with
    | [ Operand.Reg _; Operand.Reg _ ] -> [ Read_write; Read ]
    | _ -> dst_write ())
  | Pinsr _ -> [ Read_write; Read; Read ]
  | _ when is_avx_3op t ->
    List.init n (fun i -> if i = 0 then Write else Read)
  | Nop | Ret | Cdq | Cqo | Vzeroupper -> all_read ()
  | _ -> default_rmw ()

(* Implicit register operands (not in the operand list). *)
let implicit_uses t : (Reg.t * access) list =
  match t.opcode with
  | Opcode.Div | Idiv | Mul_1 | Imul_1 -> (
    match t.width with
    | Width.B -> [ (Reg.Gpr (Reg.RAX, t.width), Read_write) ]
    | _ ->
      [ (Reg.Gpr (Reg.RAX, t.width), Read_write);
        (Reg.Gpr (Reg.RDX, t.width), Read_write) ])
  | Cdq -> [ (Reg.eax, Read); (Reg.edx, Write) ]
  | Cqo -> [ (Reg.rax, Read); (Reg.rdx, Write) ]
  | Push | Pop | Call | Ret -> [ (Reg.rsp, Read_write) ]
  | _ -> []

(** Memory accesses performed by this instruction (statically known shape;
    addresses are only known at execution time). *)
type mem_access = {
  mem : Operand.mem;
  kind : [ `Load | `Store | `Load_store ];
  size : int;  (** bytes *)
}

(* Byte size of a memory operand access for this instruction. *)
let mem_size t =
  match t.opcode with
  | Opcode.Movzx w | Movsx w -> Width.bytes w
  | Movsxd -> 4
  | Movap _ | Movup _ | Movdqa | Movdqu | Lddqu | Pshufb | Palignr | Pshufd
  | Pand | Pandn | Por | Pxor | Padd _ | Psub _ | Pmull _ | Pmuludq
  | Pmaddwd | Pcmpeq _ | Pcmpgt _ | Pmaxs _ | Pmins _ | Pmaxu _ | Pminu _
  | Pabs _ | Pavg _ | Punpckl _ | Punpckh _ | Packss _ | Packus _ | Ptest
  | Fadd Opcode.Ps | Fadd Pd | Fsub Ps | Fsub Pd | Fmul Ps | Fmul Pd
  | Fdiv Ps | Fdiv Pd | Fsqrt Ps | Fsqrt Pd | Fmin Ps | Fmin Pd | Fmax Ps
  | Fmax Pd | Fand _ | Fandn _ | For_ _ | Fxor _ | Cmp_fp Ps | Cmp_fp Pd
  | Haddp _ | Round Ps | Round Pd | Rcp Ps | Rsqrt Ps | Shufp _ | Unpckl _
  | Unpckh _ | Blendp _ | Cvtdq2ps | Cvtps2dq | Cvttps2dq | Cvtpd2ps
  | Movnt Ps | Movnt Pd | Vinsertf128 | Vextractf128 | Vperm2f128 -> (
    (* Vector width: 32 bytes if any YMM register operand, else 16. *)
    let ymm =
      List.exists
        (function Operand.Reg r -> Reg.is_ymm r | _ -> false)
        t.operands
    in
    match t.opcode with
    | Vinsertf128 | Vextractf128 -> 16
    | _ -> if ymm then 32 else 16)
  | Cvtdq2pd | Cvtps2pd -> 8
  | Movs_x Ss | Fadd Ss | Fsub Ss | Fmul Ss | Fdiv Ss | Fsqrt Ss | Fmin Ss
  | Fmax Ss | Ucomis Ss | Cmp_fp Ss | Round Ss | Rcp Ss | Rsqrt Ss
  | Cvtss2sd | Vbroadcast Ss | Movd -> 4
  | Movs_x Sd | Fadd Sd | Fsub Sd | Fmul Sd | Fdiv Sd | Fsqrt Sd | Fmin Sd
  | Fmax Sd | Ucomis Sd | Cmp_fp Sd | Round Sd | Cvtsd2ss | Vbroadcast Sd
  | Movq_x -> 8
  | Vfmadd (_, p) | Vfmsub (_, p) | Vfnmadd (_, p) -> (
    match p with
    | Ss -> 4
    | Sd -> 8
    | Ps | Pd ->
      let ymm =
        List.exists
          (function Operand.Reg r -> Reg.is_ymm r | _ -> false)
          t.operands
      in
      if ymm then 32 else 16)
  | Pextr l | Pinsr l -> Opcode.int_lane_bytes l
  | Cvtsi2 _ | Cvt2si _ -> Width.bytes t.width
  | _ -> Width.bytes t.width

let mem_accesses t : mem_access list =
  match t.opcode with
  | Opcode.Lea | Nop | Jmp | Jcc _ -> []
  | _ ->
  let accesses = operand_access t in
  let size = mem_size t in
  let pair =
    try List.combine t.operands accesses with Invalid_argument _ -> []
  in
  List.filter_map
    (fun (op, acc) ->
      match op with
      | Operand.Mem m ->
        let kind =
          match acc with
          | Read -> `Load
          | Write -> `Store
          | Read_write -> `Load_store
        in
        Some { mem = m; kind; size }
      | _ -> None)
    pair
  @
  (* Push/pop access the stack implicitly. *)
  match t.opcode with
  | Opcode.Push ->
    [ { mem = { base = Some Reg.rsp; index = None; scale = 1; disp = -8L };
        kind = `Store;
        size = 8 } ]
  | Opcode.Pop ->
    [ { mem = { base = Some Reg.rsp; index = None; scale = 1; disp = 0L };
        kind = `Load;
        size = 8 } ]
  | _ -> []

let has_load t =
  List.exists (fun a -> a.kind = `Load || a.kind = `Load_store) (mem_accesses t)

let has_store t =
  List.exists (fun a -> a.kind = `Store || a.kind = `Load_store) (mem_accesses t)

let has_mem t = List.exists Operand.is_mem t.operands

(* Register roots read / written, including implicit and addressing
   registers. LEA reads its "memory" operand's registers but performs no
   access; handled by operand_access giving Read to the Mem operand. *)
let read_roots t : Reg.root list =
  let accesses = operand_access t in
  let pair =
    try List.combine t.operands accesses with Invalid_argument _ -> []
  in
  let explicit =
    List.concat_map
      (fun (op, acc) ->
        match (op, acc) with
        | Operand.Reg r, (Read | Read_write) -> [ Reg.root r ]
        | Operand.Reg _, Write -> []
        | Operand.Mem m, _ -> List.map Reg.root (Operand.mem_regs m)
        | Operand.Imm _, _ -> [])
      pair
  in
  let implicit =
    List.filter_map
      (fun (r, acc) ->
        match acc with Read | Read_write -> Some (Reg.root r) | Write -> None)
      (implicit_uses t)
  in
  List.sort_uniq compare (explicit @ implicit)

let write_roots t : Reg.root list =
  let accesses = operand_access t in
  let pair =
    try List.combine t.operands accesses with Invalid_argument _ -> []
  in
  let explicit =
    List.filter_map
      (fun (op, acc) ->
        match (op, acc) with
        | Operand.Reg r, (Write | Read_write) -> Some (Reg.root r)
        | _ -> None)
      pair
  in
  let implicit =
    List.filter_map
      (fun (r, acc) ->
        match acc with Write | Read_write -> Some (Reg.root r) | Read -> None)
      (implicit_uses t)
  in
  List.sort_uniq compare (explicit @ implicit)

(* Writing a 32-bit GPR zeroes the upper half, breaking the dependence on
   the old 64-bit value; 8/16-bit writes merge. Used by renaming. *)
let partial_register_write t =
  let accesses = operand_access t in
  let pair =
    try List.combine t.operands accesses with Invalid_argument _ -> []
  in
  List.exists
    (fun (op, acc) ->
      match (op, acc) with
      | Operand.Reg (Reg.Gpr (_, (Width.B | Width.W))), (Write | Read_write)
      | Operand.Reg (Reg.Gpr8h _), (Write | Read_write) -> true
      | _ -> false)
    pair

(** Dependency-breaking zero idioms: [xor r, r], [sub r, r],
    [pxor x, x], [xorps x, x, x] (and AVX 3-operand forms with equal
    sources). The result is architecturally zero regardless of input. *)
let is_zero_idiom t =
  match (t.opcode, t.operands) with
  | (Opcode.Xor | Sub | Pxor | Fxor _ | Psub _), [ Operand.Reg a; Operand.Reg b ] ->
    Reg.equal a b
  | (Opcode.Pxor | Fxor _ | Psub _), [ Operand.Reg _; Operand.Reg a; Operand.Reg b ] ->
    Reg.equal a b
  | _ -> false

(* Ones idioms (pcmpeq r, r) break dependences but still execute. *)
let is_ones_idiom t =
  match (t.opcode, t.operands) with
  | Opcode.Pcmpeq _, [ Operand.Reg a; Operand.Reg b ] -> Reg.equal a b
  | Opcode.Pcmpeq _, [ _; Operand.Reg a; Operand.Reg b ] -> Reg.equal a b
  | _ -> false

let uses_ymm t =
  List.exists
    (function Operand.Reg r -> Reg.is_ymm r | _ -> false)
    t.operands

(* AVX2-class instruction: FMA, or any integer-vector op on YMM. *)
let requires_avx2 t =
  Opcode.requires_avx2 t.opcode
  ||
  match t.opcode with
  | Opcode.Padd _ | Psub _ | Pmull _ | Pmuludq | Pmaddwd | Pand | Pandn
  | Por | Pxor | Pcmpeq _ | Pcmpgt _ | Pmaxs _ | Pmins _ | Pmaxu _
  | Pminu _ | Pabs _ | Pavg _ | Psll _ | Psrl _ | Psra _ | Pshufd | Pshufb
  | Palignr | Punpckl _ | Punpckh _ | Packss _ | Packus _ ->
    uses_ymm t
  | _ -> false

(* Sanity checks; returns a diagnostic for malformed instructions. *)
let validate t : (unit, string) result =
  let n = List.length t.operands in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match t.opcode with
  | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper ->
    if n = 0 then Ok () else err "%s takes no operands" (Opcode.mnemonic t.opcode)
  | Inc | Dec | Neg | Not | Bswap | Push | Pop | Div | Idiv | Mul_1 | Imul_1
  | Set _ | Jmp | Jcc _ | Call ->
    if n = 1 then Ok () else err "%s takes one operand" (Opcode.mnemonic t.opcode)
  | Imul_rr -> if n = 2 || n = 3 then Ok () else err "imul takes 2 or 3 operands"
  | Shld | Shrd | Palignr ->
    if n = 3 || n = 4 then Ok () else err "%s takes 3 operands" (Opcode.mnemonic t.opcode)
  | Vfmadd _ | Vfmsub _ | Vfnmadd _ ->
    if n = 3 then Ok () else err "fma takes 3 operands"
  | _ -> if n >= 1 && n <= 4 then Ok () else err "bad operand count %d" n

let pp fmt t =
  (* AT&T order: sources first, destination last. *)
  let ops = List.rev t.operands in
  let needs_suffix =
    (not (Opcode.is_vector t.opcode))
    && (not (Opcode.is_control_flow t.opcode))
    && (match t.opcode with
       | Opcode.Nop | Cdq | Cqo | Set _ | Movzx _ | Movsx _ | Movsxd -> false
       | _ -> true)
    && List.exists (fun o -> not (Operand.is_reg o)) t.operands
  in
  let suffix = if needs_suffix then Width.suffix t.width else "" in
  let vex_only =
    match t.opcode with
    | Opcode.Vfmadd _ | Vfmsub _ | Vfnmadd _ | Vbroadcast _ | Vinsertf128
    | Vextractf128 | Vperm2f128 | Vzeroupper -> true
    | _ -> false
  in
  let v_prefix =
    if vex_only || is_avx_3op t || uses_ymm t then "v" else ""
  in
  let mnem =
    match t.opcode with
    | Opcode.Movzx w -> "movz" ^ Width.suffix w ^ Width.suffix t.width
    | Opcode.Movsx w -> "movs" ^ Width.suffix w ^ Width.suffix t.width
    | op -> v_prefix ^ Opcode.mnemonic op ^ suffix
  in
  Format.fprintf fmt "%s" mnem;
  List.iteri
    (fun i op ->
      if i = 0 then Format.fprintf fmt " %a" Operand.pp op
      else Format.fprintf fmt ", %a" Operand.pp op)
    ops

let to_string t = Format.asprintf "%a" pp t
