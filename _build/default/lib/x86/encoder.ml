(** Binary encoding of instructions.

    Real x86 machine-code generation is out of scope (and irrelevant to the
    methodology), but two properties of the encoding do matter to the
    reproduction and are preserved:

    - {b Instruction byte length} drives the L1 instruction-cache footprint
      of unrolled basic blocks, which is the entire point of the paper's
      "more intelligent unrolling". [encoded_length] implements a faithful
      x86-64 length model (prefixes, REX/VEX, escape bytes, ModRM, SIB,
      displacement and immediate sizing).
    - {b Round-tripping}: the tracer stores programs as byte streams and
      re-extracts basic blocks by decoding, as BHive does with DynamoRIO.
      [encode]/[decode] implement a self-describing container whose record
      for each instruction is padded to exactly [encoded_length] bytes. *)

(* --- x86-64 length model ------------------------------------------- *)

let fits_i8 v = Int64.compare v (-128L) >= 0 && Int64.compare v 127L <= 0

let reg_needs_rex = function
  | Reg.Gpr (g, _) -> Reg.is_extended_gpr g
  | Reg.Gpr8h _ -> false
  | Reg.Xmm i | Reg.Ymm i -> i >= 8
  | Reg.Rip -> false

(* sil/dil/bpl/spl require a REX prefix to be encodable. *)
let reg_forces_rex = function
  | Reg.Gpr ((Reg.RSI | Reg.RDI | Reg.RBP | Reg.RSP), Width.B) -> true
  | r -> reg_needs_rex r

let mem_disp_bytes (m : Operand.mem) =
  match m.base with
  | None -> 4 (* absolute or index-only always uses disp32 *)
  | Some (Reg.Gpr (Reg.RBP, _)) | Some (Reg.Gpr (Reg.R13, _)) ->
    if fits_i8 m.disp then 1 else 4
  | Some _ ->
    if Int64.equal m.disp 0L then 0 else if fits_i8 m.disp then 1 else 4

let mem_needs_sib (m : Operand.mem) =
  m.index <> None
  || m.base = None
  || (match m.base with
     | Some (Reg.Gpr (Reg.RSP, _)) | Some (Reg.Gpr (Reg.R12, _)) -> true
     | _ -> false)

(* Number of opcode bytes including escape prefixes (0F / 0F38 / 0F3A),
   not counting legacy/REX/VEX prefixes. *)
let opcode_bytes (t : Inst.t) =
  match t.opcode with
  | Opcode.Mov | Add | Sub | Adc | Sbb | And | Or | Xor | Cmp | Test | Lea
  | Inc | Dec | Neg | Not | Shl | Shr | Sar | Rol | Ror | Mul_1 | Imul_1
  | Div | Idiv | Push | Pop | Xchg | Nop | Cdq | Cqo | Jmp | Call | Ret ->
    1
  | Jcc _ -> 2
  | Movzx _ | Movsx _ | Movsxd | Cmov _ | Set _ | Shld | Shrd | Imul_rr
  | Bsf | Bsr | Popcnt | Lzcnt | Tzcnt | Bswap | Bt | Bts | Btr | Btc -> 2
  | Andn | Blsi | Blsr | Blsmsk | Bextr -> 3
  | Crc32 -> 4
  | Pshufb | Palignr | Ptest | Pextr _ | Pinsr _ | Pabs _ | Pmull Opcode.I32
  | Pmaxs Opcode.I8 | Pmins Opcode.I8 | Pmaxu Opcode.I16 | Pminu Opcode.I16
  | Pmaxs Opcode.I32 | Pmins Opcode.I32 | Pmaxu Opcode.I32 | Pminu Opcode.I32
  | Round _ | Blendp _ | Packus Opcode.I32 -> 3
  | Vfmadd _ | Vfmsub _ | Vfnmadd _ | Vbroadcast _ | Vinsertf128
  | Vextractf128 | Vperm2f128 -> 3
  | Vzeroupper -> 1
  | _ when Opcode.is_vector t.opcode -> 2 (* classic 0F map *)
  | _ -> 2

let is_vex (t : Inst.t) =
  Inst.uses_ymm t || Inst.is_avx_3op t
  ||
  match t.opcode with
  | Opcode.Vfmadd _ | Vfmsub _ | Vfnmadd _ | Vbroadcast _ | Vinsertf128
  | Vextractf128 | Vperm2f128 | Vzeroupper | Andn | Blsi | Blsr | Blsmsk
  | Bextr -> true
  | _ -> false

let imm_bytes (t : Inst.t) =
  let alu_imm v =
    (* ALU group 1 supports sign-extended imm8. *)
    if fits_i8 v then 1 else min 4 (Width.bytes t.width)
  in
  List.fold_left
    (fun acc op ->
      match op with
      | Operand.Imm v -> (
        acc
        +
        match t.opcode with
        | Opcode.Shl | Shr | Sar | Rol | Ror | Shld | Shrd | Palignr
        | Pshufd | Shufp _ | Cmp_fp _ | Round _ | Blendp _ | Pextr _
        | Pinsr _ | Vinsertf128 | Vextractf128 | Vperm2f128 | Psll _
        | Psrl _ | Psra _ | Pslldq | Psrldq | Bextr -> 1
        | Opcode.Mov when Width.equal t.width Width.Q && not (fits_i8 v) ->
          if Int64.compare v 0x7FFFFFFFL > 0 || Int64.compare v (-0x80000000L) < 0
          then 8
          else 4
        | Opcode.Mov -> min 4 (Width.bytes t.width)
        | _ -> alu_imm v)
      | _ -> acc)
    0 t.operands

(** Length in bytes this instruction would occupy as genuine x86-64
    machine code. *)
let encoded_length (t : Inst.t) =
  let operands = t.operands in
  let regs =
    List.concat_map
      (function
        | Operand.Reg r -> [ r ]
        | Operand.Mem m -> Operand.mem_regs m
        | Operand.Imm _ -> [])
      operands
  in
  let mem = List.find_map (function Operand.Mem m -> Some m | _ -> None) operands in
  let vex = is_vex t in
  let legacy_prefix =
    if vex then 0
    else
      (if Width.equal t.width Width.W && not (Opcode.is_vector t.opcode) then 1
       else 0)
      +
      (* SSE prefixes 66/F2/F3 *)
      match t.opcode with
      | Opcode.Movap Opcode.Pd | Movup Opcode.Pd | Movdqa | Fadd (Sd | Pd)
      | Fsub (Sd | Pd) | Fmul (Sd | Pd) | Fdiv (Sd | Pd) | Fsqrt (Sd | Pd)
      | Fmin (Sd | Pd) | Fmax (Sd | Pd) | Fand Pd | Fandn Pd | For_ Pd
      | Fxor Pd | Movs_x (Ss | Sd) | Movdqu | Lddqu | Ucomis Sd
      | Cmp_fp (Sd | Pd) | Cvtsi2 _ | Cvt2si _ | Cvtss2sd | Cvtsd2ss
      | Cvtps2dq | Cvttps2dq | Cvtdq2pd | Cvtpd2ps | Haddp _ | Rcp _
      | Rsqrt _ | Movd | Movq_x | Pshufd | Popcnt | Lzcnt | Tzcnt | Crc32 ->
        1
      | _ when Opcode.is_vector t.opcode && t.opcode <> Opcode.Movap Opcode.Ps
               && t.opcode <> Opcode.Movup Opcode.Ps
               && (match t.opcode with
                  | Opcode.Fand Ps | Fandn Ps | For_ Ps | Fxor Ps | Fadd (Ss | Ps)
                  | Movmsk Ps | Unpckl Ps | Unpckh Ps | Shufp Ps | Movnt Ps
                  | Cvtdq2ps | Cvtps2pd -> false
                  | _ -> true) ->
        1 (* most remaining packed-integer ops carry 66 *)
      | _ -> 0
  in
  let rex =
    if vex then 0
    else if
      (Width.equal t.width Width.Q
      && (not (Opcode.is_vector t.opcode))
      && match t.opcode with
         | Opcode.Push | Pop | Cdq | Jmp | Call | Ret | Nop -> false
         | _ -> true)
      || List.exists reg_forces_rex regs
    then 1
    else 0
  in
  let vex_bytes =
    if not vex then 0
    else if
      List.exists reg_needs_rex regs
      || opcode_bytes t >= 3
      || Width.equal t.width Width.Q && Inst.has_mem t
    then 3
    else 2 (* 2-byte VEX *)
  in
  let modrm =
    match t.opcode with
    | Opcode.Nop | Cdq | Cqo | Ret | Vzeroupper -> 0
    | Opcode.Push | Pop when (match operands with [ Operand.Reg _ ] -> true | _ -> false)
      -> 0
    | Opcode.Bswap -> 0
    | _ when operands = [] -> 0
    | _ -> 1
  in
  let sib, disp =
    match mem with
    | None -> (0, 0)
    | Some m -> ((if mem_needs_sib m then 1 else 0), mem_disp_bytes m)
  in
  legacy_prefix + rex + vex_bytes + opcode_bytes t + modrm + sib + disp
  + imm_bytes t

(* --- Self-describing container ------------------------------------- *)

let opcode_index : (Opcode.t, int) Hashtbl.t =
  let tbl = Hashtbl.create 1024 in
  List.iteri (fun i op -> Hashtbl.replace tbl op i) Opcode.all;
  tbl

let opcode_array = Array.of_list Opcode.all

let width_code = function Width.B -> 0 | W -> 1 | D -> 2 | Q -> 3

let width_of_code = function
  | 0 -> Width.B
  | 1 -> Width.W
  | 2 -> Width.D
  | 3 -> Width.Q
  | n -> invalid_arg (Printf.sprintf "width code %d" n)

let reg_code = function
  | Reg.Gpr (g, w) -> (Reg.gpr_index g lsl 3) lor width_code w
  | Reg.Gpr8h g -> (Reg.gpr_index g lsl 3) lor 4
  | Reg.Xmm i -> (i lsl 3) lor 5
  | Reg.Ymm i -> (i lsl 3) lor 6
  | Reg.Rip -> 7

let reg_of_code c =
  let hi = c lsr 3 and lo = c land 7 in
  match lo with
  | 0 | 1 | 2 | 3 -> Reg.Gpr (Reg.gpr_of_index hi, width_of_code lo)
  | 4 -> Reg.Gpr8h (Reg.gpr_of_index hi)
  | 5 -> Reg.Xmm hi
  | 6 -> Reg.Ymm hi
  | 7 -> Reg.Rip
  | _ -> assert false

exception Decode_error of string

let put_i64 buf v =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
  done

let get_i64 bytes pos =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get bytes (pos + k))))
  done;
  !v

(* Record layout:
   [len:u8] [opcode:u16le] [width|nops: u8] (operands...) (padding 0x90...)
   operand: tag u8 (0 imm / 1 reg / 2 mem);
     imm -> 8 bytes; reg -> 1 byte;
     mem -> flags u8 (bit0 base, bit1 index), [base u8] [index u8] scale u8, disp 8 bytes *)
let encode_into buf (t : Inst.t) =
  let body = Buffer.create 24 in
  let idx =
    match Hashtbl.find_opt opcode_index t.opcode with
    | Some i -> i
    | None -> invalid_arg ("Encoder.encode: opcode not in Opcode.all: " ^ Opcode.mnemonic t.opcode)
  in
  Buffer.add_char body (Char.chr (idx land 0xFF));
  Buffer.add_char body (Char.chr ((idx lsr 8) land 0xFF));
  Buffer.add_char body
    (Char.chr (width_code t.width lor (List.length t.operands lsl 2)));
  List.iter
    (fun op ->
      match op with
      | Operand.Imm v ->
        Buffer.add_char body '\000';
        put_i64 body v
      | Operand.Reg r ->
        Buffer.add_char body '\001';
        Buffer.add_char body (Char.chr (reg_code r))
      | Operand.Mem m ->
        Buffer.add_char body '\002';
        let flags =
          (if m.base <> None then 1 else 0) lor if m.index <> None then 2 else 0
        in
        Buffer.add_char body (Char.chr flags);
        (match m.base with
        | Some b -> Buffer.add_char body (Char.chr (reg_code b))
        | None -> ());
        (match m.index with
        | Some i -> Buffer.add_char body (Char.chr (reg_code i))
        | None -> ());
        Buffer.add_char body (Char.chr m.scale);
        put_i64 body m.disp)
    t.operands;
  let body_len = Buffer.length body + 1 in
  let target = max body_len (encoded_length t) in
  if target > 255 then invalid_arg "Encoder.encode: instruction too long";
  Buffer.add_char buf (Char.chr target);
  Buffer.add_buffer buf body;
  for _ = body_len + 1 to target do
    Buffer.add_char buf '\x90'
  done

let encode (t : Inst.t) : bytes =
  let buf = Buffer.create 24 in
  encode_into buf t;
  Buffer.to_bytes buf

let encode_block (insts : Inst.t list) : bytes =
  let buf = Buffer.create (24 * List.length insts) in
  List.iter (encode_into buf) insts;
  Buffer.to_bytes buf

(* Decode one instruction at [pos]; returns the instruction and the
   position just past its record. *)
let decode_at (bytes : bytes) pos : Inst.t * int =
  let len = Bytes.length bytes in
  if pos >= len then raise (Decode_error "decode past end");
  let rec_len = Char.code (Bytes.get bytes pos) in
  if rec_len < 4 || pos + rec_len > len then
    raise (Decode_error (Printf.sprintf "bad record length %d at %d" rec_len pos));
  let b i = Char.code (Bytes.get bytes (pos + i)) in
  let idx = b 1 lor (b 2 lsl 8) in
  if idx >= Array.length opcode_array then
    raise (Decode_error (Printf.sprintf "bad opcode index %d" idx));
  let opcode = opcode_array.(idx) in
  let wn = b 3 in
  let width = width_of_code (wn land 3) in
  let nops = wn lsr 2 in
  let cur = ref (pos + 4) in
  let read_u8 () =
    let v = Char.code (Bytes.get bytes !cur) in
    incr cur;
    v
  in
  let read_i64 () =
    let v = get_i64 bytes !cur in
    cur := !cur + 8;
    v
  in
  let operands =
    List.init nops (fun _ ->
        match read_u8 () with
        | 0 -> Operand.Imm (read_i64 ())
        | 1 -> Operand.Reg (reg_of_code (read_u8 ()))
        | 2 ->
          let flags = read_u8 () in
          let base = if flags land 1 <> 0 then Some (reg_of_code (read_u8 ())) else None in
          let index = if flags land 2 <> 0 then Some (reg_of_code (read_u8 ())) else None in
          let scale = read_u8 () in
          let disp = read_i64 () in
          Operand.Mem { base; index; scale; disp }
        | t -> raise (Decode_error (Printf.sprintf "bad operand tag %d" t)))
  in
  (Inst.make ~width opcode operands, pos + rec_len)

let decode_block (bytes : bytes) : Inst.t list =
  let len = Bytes.length bytes in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      let inst, next = decode_at bytes pos in
      go next (inst :: acc)
  in
  go 0 []

(* Total code size in bytes of a block as genuine x86 (what the I-cache
   footprint model uses). *)
let block_length insts =
  List.fold_left (fun acc i -> acc + encoded_length i) 0 insts
