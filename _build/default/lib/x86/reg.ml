(** x86-64 register file description with aliasing information.

    General-purpose registers are represented as a 64-bit root plus an
    access width, so that e.g. [%al], [%ax], [%eax] and [%rax] all alias
    the same root. The high-byte registers AH..DH are representable but
    only for the four legacy roots. Vector registers are XMM/YMM over the
    same 16 roots. *)

type gpr =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

type t =
  | Gpr of gpr * Width.t  (** e.g. [Gpr (RAX, D)] is [%eax] *)
  | Gpr8h of gpr  (** AH/CH/DH/BH; root must be RAX/RCX/RDX/RBX *)
  | Xmm of int  (** 128-bit vector register, index 0..15 *)
  | Ymm of int  (** 256-bit vector register, index 0..15 *)
  | Rip

let all_gprs =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

let gpr_index = function
  | RAX -> 0
  | RCX -> 1
  | RDX -> 2
  | RBX -> 3
  | RSP -> 4
  | RBP -> 5
  | RSI -> 6
  | RDI -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let gpr_of_index = function
  | 0 -> RAX
  | 1 -> RCX
  | 2 -> RDX
  | 3 -> RBX
  | 4 -> RSP
  | 5 -> RBP
  | 6 -> RSI
  | 7 -> RDI
  | 8 -> R8
  | 9 -> R9
  | 10 -> R10
  | 11 -> R11
  | 12 -> R12
  | 13 -> R13
  | 14 -> R14
  | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.gpr_of_index: %d" n)

(** Dependence-tracking root: GPRs alias on their 64-bit root; XMMk and
    YMMk alias on vector root k. *)
type root = Root_gpr of gpr | Root_vec of int | Root_rip

let root = function
  | Gpr (g, _) | Gpr8h g -> Root_gpr g
  | Xmm i | Ymm i -> Root_vec i
  | Rip -> Root_rip

(* Dense index of a root, for array-based renaming tables:
   0..15 GPRs, 16..31 vector, 32 rip. *)
let root_index = function
  | Root_gpr g -> gpr_index g
  | Root_vec i -> 16 + i
  | Root_rip -> 32

let num_roots = 33

let width = function
  | Gpr (_, w) -> w
  | Gpr8h _ -> Width.B
  | Xmm _ | Ymm _ | Rip -> Width.Q

let byte_size = function
  | Gpr (_, w) -> Width.bytes w
  | Gpr8h _ -> 1
  | Xmm _ -> 16
  | Ymm _ -> 32
  | Rip -> 8

let is_gpr = function Gpr _ | Gpr8h _ -> true | _ -> false
let is_vector = function Xmm _ | Ymm _ -> true | _ -> false
let is_ymm = function Ymm _ -> true | _ -> false

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let gpr_base_name = function
  | RAX -> "ax"
  | RCX -> "cx"
  | RDX -> "dx"
  | RBX -> "bx"
  | RSP -> "sp"
  | RBP -> "bp"
  | RSI -> "si"
  | RDI -> "di"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let is_extended_gpr g = gpr_index g >= 8

let name = function
  | Gpr (g, w) when is_extended_gpr g -> (
    let base = gpr_base_name g in
    match w with
    | Width.B -> base ^ "b"
    | Width.W -> base ^ "w"
    | Width.D -> base ^ "d"
    | Width.Q -> base)
  | Gpr (g, w) -> (
    let base = gpr_base_name g in
    match (w, g) with
    | Width.Q, _ -> "r" ^ base
    | Width.D, _ -> "e" ^ base
    | Width.W, _ -> base
    | Width.B, (RAX | RCX | RDX | RBX) -> String.sub base 0 1 ^ "l"
    | Width.B, _ -> base ^ "l" (* sil, dil, bpl, spl *))
  | Gpr8h g -> String.sub (gpr_base_name g) 0 1 ^ "h"
  | Xmm i -> Printf.sprintf "xmm%d" i
  | Ymm i -> Printf.sprintf "ymm%d" i
  | Rip -> "rip"

let pp fmt t = Format.pp_print_string fmt (name t)

(* Parse a register name without any % sigil, e.g. "eax", "r10d", "xmm3". *)
let of_name s =
  let s = String.lowercase_ascii s in
  let starts p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let legacy base =
    List.find_opt (fun g -> gpr_base_name g = base)
      [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI ]
  in
  let numbered base =
    List.find_opt (fun g -> gpr_base_name g = base)
      [ R8; R9; R10; R11; R12; R13; R14; R15 ]
  in
  let vec prefix mk =
    if starts prefix then
      match int_of_string_opt (String.sub s (String.length prefix) (String.length s - String.length prefix)) with
      | Some i when i >= 0 && i < 16 -> Some (mk i)
      | _ -> None
    else None
  in
  match s with
  | "rip" -> Some Rip
  | "ah" -> Some (Gpr8h RAX)
  | "ch" -> Some (Gpr8h RCX)
  | "dh" -> Some (Gpr8h RDX)
  | "bh" -> Some (Gpr8h RBX)
  | "al" -> Some (Gpr (RAX, B))
  | "cl" -> Some (Gpr (RCX, B))
  | "dl" -> Some (Gpr (RDX, B))
  | "bl" -> Some (Gpr (RBX, B))
  | "sil" -> Some (Gpr (RSI, B))
  | "dil" -> Some (Gpr (RDI, B))
  | "bpl" -> Some (Gpr (RBP, B))
  | "spl" -> Some (Gpr (RSP, B))
  | _ -> (
    match vec "xmm" (fun i -> Xmm i) with
    | Some r -> Some r
    | None -> (
      match vec "ymm" (fun i -> Ymm i) with
      | Some r -> Some r
      | None ->
        if starts "r" && String.length s >= 2 then (
          (* r8..r15 with optional b/w/d suffix, or rax-style *)
          match legacy (String.sub s 1 (String.length s - 1)) with
          | Some g -> Some (Gpr (g, Q))
          | None -> (
            let body, w =
              let n = String.length s in
              match s.[n - 1] with
              | 'b' when numbered (String.sub s 0 (n - 1)) <> None ->
                (String.sub s 0 (n - 1), Width.B)
              | 'w' when numbered (String.sub s 0 (n - 1)) <> None ->
                (String.sub s 0 (n - 1), Width.W)
              | 'd' when numbered (String.sub s 0 (n - 1)) <> None ->
                (String.sub s 0 (n - 1), Width.D)
              | _ -> (s, Width.Q)
            in
            match numbered body with
            | Some g -> Some (Gpr (g, w))
            | None -> None))
        else if starts "e" then (
          match legacy (String.sub s 1 (String.length s - 1)) with
          | Some g -> Some (Gpr (g, D))
          | None -> None)
        else (
          match legacy s with
          | Some g -> Some (Gpr (g, W))
          | None -> None)))

(* Common shorthands used throughout the code base and tests. *)
let rax = Gpr (RAX, Q)
let rbx = Gpr (RBX, Q)
let rcx = Gpr (RCX, Q)
let rdx = Gpr (RDX, Q)
let rsi = Gpr (RSI, Q)
let rdi = Gpr (RDI, Q)
let rbp = Gpr (RBP, Q)
let rsp = Gpr (RSP, Q)
let r8 = Gpr (R8, Q)
let r9 = Gpr (R9, Q)
let r10 = Gpr (R10, Q)
let r11 = Gpr (R11, Q)
let r12 = Gpr (R12, Q)
let r13 = Gpr (R13, Q)
let r14 = Gpr (R14, Q)
let r15 = Gpr (R15, Q)
let eax = Gpr (RAX, D)
let ebx = Gpr (RBX, D)
let ecx = Gpr (RCX, D)
let edx = Gpr (RDX, D)
let esi = Gpr (RSI, D)
let edi = Gpr (RDI, D)
let ax = Gpr (RAX, W)
let al = Gpr (RAX, B)
let bl = Gpr (RBX, B)
let cl = Gpr (RCX, B)
let dl = Gpr (RDX, B)
let xmm i = Xmm i
let ymm i = Ymm i
