(** Assembly text parser accepting both AT&T and Intel syntax.

    Syntax is auto-detected per line: a '%' register sigil or '$' immediate
    sigil selects AT&T, '[' selects Intel; otherwise register position
    decides nothing and AT&T suffix rules are tried first. Comments start
    with '#' or "//". *)

let is_space c = c = ' ' || c = '\t'

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let strip_comment line =
  let cut i = String.sub line 0 i in
  let n = String.length line in
  let rec scan i =
    if i >= n then line
    else if line.[i] = '#' then cut i
    else if i + 1 < n && line.[i] = '/' && line.[i + 1] = '/' then cut i
    else scan (i + 1)
  in
  scan 0

(* Split operand text on top-level commas (commas inside parens or brackets
   belong to AT&T memory operands). *)
let split_operands s =
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '[' ->
        incr depth;
        Buffer.add_char buf c
      | ')' | ']' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  out := Buffer.contents buf :: !out;
  List.rev !out |> List.map strip |> List.filter (fun s -> s <> "")

let parse_int64 s : int64 option =
  let s = strip s in
  let neg, s =
    if String.length s > 0 && s.[0] = '-' then
      (true, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  let v =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      Int64.of_string_opt ("0x" ^ String.sub s 2 (String.length s - 2))
    else Int64.of_string_opt s
  in
  Option.map (fun v -> if neg then Int64.neg v else v) v

(* --- AT&T operands ------------------------------------------------- *)

let att_reg s =
  if String.length s > 1 && s.[0] = '%' then
    Reg.of_name (String.sub s 1 (String.length s - 1))
  else None

let att_mem s : Operand.t option =
  (* disp(base, index, scale) with every part optional *)
  match String.index_opt s '(' with
  | None -> (
    (* bare displacement = absolute address *)
    match parse_int64 s with
    | Some d -> Some (Operand.Mem { base = None; index = None; scale = 1; disp = d })
    | None -> None)
  | Some lp ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then None
    else
      let disp_txt = strip (String.sub s 0 lp) in
      let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
      let disp =
        if disp_txt = "" then Some 0L else parse_int64 disp_txt
      in
      let parts = String.split_on_char ',' inner |> List.map strip in
      let reg_of = function
        | "" -> Ok None
        | r -> (
          match att_reg r with
          | Some reg -> Ok (Some reg)
          | None -> Error ())
      in
      let open struct exception Bad end in
      (try
         let base, index, scale =
           match parts with
           | [ b ] -> (b, "", "1")
           | [ b; i ] -> (b, i, "1")
           | [ b; i; s ] -> (b, i, (if s = "" then "1" else s))
           | _ -> raise Bad
         in
         let base = match reg_of base with Ok b -> b | Error () -> raise Bad in
         let index = match reg_of index with Ok i -> i | Error () -> raise Bad in
         let scale = match int_of_string_opt scale with Some k -> k | None -> raise Bad in
         match disp with
         | Some d when scale = 1 || scale = 2 || scale = 4 || scale = 8 ->
           Some (Operand.Mem { base; index; scale; disp = d })
         | _ -> None
       with Bad -> None)

let att_operand s : Operand.t option =
  let s = strip s in
  if s = "" then None
  else if s.[0] = '$' then
    Option.map Operand.imm (parse_int64 (String.sub s 1 (String.length s - 1)))
  else
    match att_reg s with
    | Some r -> Some (Operand.Reg r)
    | None -> att_mem s

(* --- Intel operands ------------------------------------------------ *)

(* Parse the bracket body: terms separated by '+' / '-', each term either a
   register, reg*scale, scale*reg, or a displacement constant. *)
let intel_bracket body : Operand.t option =
  let open struct exception Bad end in
  try
    let base = ref None and index = ref None and scale = ref 1 and disp = ref 0L in
    (* Normalise "a - b" into "a + -b" then split on '+'. *)
    let buf = Buffer.create (String.length body + 8) in
    String.iteri
      (fun k c ->
        if c = '-' && k > 0 then Buffer.add_string buf "+-"
        else if c = '-' && k = 0 then Buffer.add_char buf '-'
        else Buffer.add_char buf c)
      body;
    let terms =
      String.split_on_char '+' (Buffer.contents buf)
      |> List.map strip
      |> List.filter (fun t -> t <> "")
    in
    let add_reg ?(k = 1) r =
      if k = 1 && !base = None then base := Some r
      else if !index = None then (
        index := Some r;
        scale := k)
      else raise Bad
    in
    List.iter
      (fun term ->
        match String.index_opt term '*' with
        | Some star ->
          let a = strip (String.sub term 0 star) in
          let b = strip (String.sub term (star + 1) (String.length term - star - 1)) in
          (* either k*reg or reg*k *)
          (match (int_of_string_opt a, Reg.of_name b) with
          | Some k, Some r -> add_reg ~k r
          | _ -> (
            match (Reg.of_name a, int_of_string_opt b) with
            | Some r, Some k -> add_reg ~k r
            | _ -> raise Bad))
        | None -> (
          match Reg.of_name term with
          | Some r -> add_reg r
          | None -> (
            match parse_int64 term with
            | Some d -> disp := Int64.add !disp d
            | None -> raise Bad)))
      terms;
    if !scale <> 1 && !scale <> 2 && !scale <> 4 && !scale <> 8 then raise Bad;
    Some (Operand.Mem { base = !base; index = !index; scale = !scale; disp = !disp })
  with Bad -> None

(* Strip "byte/word/dword/qword/xmmword/ymmword ptr" prefixes, returning
   the implied access width when it is an integer width. *)
let strip_ptr s : string * Width.t option =
  let lower = String.lowercase_ascii s in
  let try_prefix p w =
    let pl = String.length p in
    if String.length lower >= pl && String.sub lower 0 pl = p then
      Some (strip (String.sub s pl (String.length s - pl)), w)
    else None
  in
  let candidates =
    [ ("byte ptr", Some Width.B); ("word ptr", Some Width.W);
      ("dword ptr", Some Width.D); ("qword ptr", Some Width.Q);
      ("xmmword ptr", None); ("ymmword ptr", None); ("ptr", None) ]
  in
  let rec go = function
    | [] -> (s, None)
    | (p, w) :: rest -> (
      match try_prefix p w with Some (s', _) -> (s', w) | None -> go rest)
  in
  go candidates

let intel_operand s : (Operand.t * Width.t option) option =
  let s = strip s in
  if s = "" then None
  else
    let s, ptr_width = strip_ptr s in
    if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']' then
      Option.map
        (fun m -> (m, ptr_width))
        (intel_bracket (String.sub s 1 (String.length s - 2)))
    else
      match Reg.of_name s with
      | Some r -> Some (Operand.Reg r, Some (Reg.width r))
      | None -> (
        match parse_int64 s with
        | Some v -> Some (Operand.Imm v, None)
        | None -> None)

(* --- Mnemonic resolution ------------------------------------------- *)

(* Plain (unsuffixed) mnemonic table built from [Opcode.all]; includes a
   'v'-prefixed alias for every vector opcode. *)
let mnemonic_table : (string, Opcode.t) Hashtbl.t =
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun op ->
      let m = Opcode.mnemonic op in
      if not (Hashtbl.mem tbl m) then Hashtbl.add tbl m op;
      if Opcode.is_vector op then
        let vm = "v" ^ m in
        if not (Hashtbl.mem tbl vm) then Hashtbl.add tbl vm op)
    Opcode.all;
  (* Aliases *)
  Hashtbl.replace tbl "movsxd" Opcode.Movsxd;
  Hashtbl.replace tbl "movzx" (Opcode.Movzx Width.B);
  Hashtbl.replace tbl "movsx" (Opcode.Movsx Width.B);
  Hashtbl.replace tbl "cltd" Opcode.Cdq;
  Hashtbl.replace tbl "cqto" Opcode.Cqo;
  Hashtbl.replace tbl "cdq" Opcode.Cdq;
  Hashtbl.replace tbl "cqo" Opcode.Cqo;
  Hashtbl.replace tbl "vzeroupper" Opcode.Vzeroupper;
  tbl

let width_of_suffix = function
  | 'b' -> Some Width.B
  | 'w' -> Some Width.W
  | 'l' -> Some Width.D
  | 'q' -> Some Width.Q
  | _ -> None

(* movzbl / movswq / movzbq ... : movz/movs + src suffix + dst suffix *)
let movx_mnemonic m : (Opcode.t * Width.t) option =
  if String.length m = 6
     && (String.sub m 0 4 = "movz" || String.sub m 0 4 = "movs")
  then
    match (width_of_suffix m.[4], width_of_suffix m.[5]) with
    | Some src, Some dst when Width.bytes src < Width.bytes dst ->
      let op =
        if String.sub m 0 4 = "movz" then Opcode.Movzx src else Opcode.Movsx src
      in
      Some (op, dst)
    | _ -> None
  else None

(* Resolve a mnemonic to (opcode, width hint). Tries the exact table, then
   movz/movs forms, then an AT&T width suffix. *)
let resolve_mnemonic m : (Opcode.t * Width.t option) option =
  let m = String.lowercase_ascii m in
  match Hashtbl.find_opt mnemonic_table m with
  | Some op -> Some (op, None)
  | None -> (
    match movx_mnemonic m with
    | Some (op, w) -> Some (op, Some w)
    | None ->
      if m = "movslq" then Some (Opcode.Movsxd, Some Width.Q)
      else
        let n = String.length m in
        if n < 2 then None
        else
          match width_of_suffix m.[n - 1] with
          | Some w -> (
            let base = String.sub m 0 (n - 1) in
            match Hashtbl.find_opt mnemonic_table base with
            | Some op when not (Opcode.is_vector op) -> Some (op, Some w)
            | _ -> None)
          | None -> None)

(* Infer integer operation width from register operands. *)
let infer_width (operands : Operand.t list) : Width.t option =
  List.fold_left
    (fun acc op ->
      match (acc, op) with
      | Some _, _ -> acc
      | None, Operand.Reg (Reg.Gpr (_, w)) -> Some w
      | None, Operand.Reg (Reg.Gpr8h _) -> Some Width.B
      | None, _ -> None)
    None operands

type syntax = Att | Intel

let detect_syntax line =
  if String.contains line '%' || String.contains line '$' then Att
  else if String.contains line '[' then Intel
  else Att

let parse_line line : (Inst.t option, string) result =
  let line = strip (strip_comment line) in
  if line = "" then Ok None
  else
    let msplit =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        (String.sub line 0 i, String.sub line i (String.length line - i))
    in
    let mnem, rest = msplit in
    let mnem = String.lowercase_ascii (strip mnem) in
    match resolve_mnemonic mnem with
    | None -> Error (Printf.sprintf "unknown mnemonic %S" mnem)
    | Some (opcode, width_hint) -> (
      let texts = split_operands (strip rest) in
      let syntax = detect_syntax line in
      let try_att () =
        let ops = List.map att_operand texts in
        if List.exists Option.is_none ops then None
        else
          (* AT&T lists sources first; convert to Intel order. *)
          Some (List.rev_map Option.get ops, None)
      in
      let try_intel () =
        let ops = List.map intel_operand texts in
        if List.exists Option.is_none ops then None
        else
          let ops = List.map Option.get ops in
          let ptr_w =
            List.fold_left
              (fun acc (_, w) -> match acc with Some _ -> acc | None -> w)
              None ops
          in
          Some (List.map fst ops, ptr_w)
      in
      let parsed =
        match syntax with
        | Att -> ( match try_att () with Some p -> Some p | None -> try_intel ())
        | Intel -> try_intel ()
      in
      match parsed with
      | None -> Error (Printf.sprintf "cannot parse operands of %S" line)
      | Some (operands, intel_ptr_width) ->
        let width =
          match width_hint with
          | Some w -> w
          | None -> (
            match infer_width operands with
            | Some w -> w
            | None -> (
              match intel_ptr_width with Some w -> w | None -> Width.Q))
        in
        (* movq/movd are overloaded mnemonics: without a vector register
           operand they are plain integer moves *)
        let opcode, width =
          let has_vec =
            List.exists
              (function Operand.Reg r -> Reg.is_vector r | _ -> false)
              operands
          in
          match opcode with
          | Opcode.Movq_x when not has_vec -> (Opcode.Mov, Width.Q)
          | Opcode.Movd when not has_vec -> (Opcode.Mov, Width.D)
          | _ -> (opcode, width)
        in
        let inst = Inst.make ~width opcode operands in
        (match Inst.validate inst with
        | Ok () -> Ok (Some inst)
        | Error e -> Error (Printf.sprintf "%s: %s" line e)))

let inst line : (Inst.t, string) result =
  match parse_line line with
  | Ok (Some i) -> Ok i
  | Ok None -> Error "empty line"
  | Error e -> Error e

(* Parse a whole block: newline- or ';'-separated instructions. *)
let block text : (Inst.t list, string) result =
  let lines =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ';')
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go acc rest
      | Ok (Some i) -> go (i :: acc) rest
      | Error e -> Error e)
  in
  go [] lines

let block_exn text =
  match block text with Ok b -> b | Error e -> failwith ("Parser.block: " ^ e)
