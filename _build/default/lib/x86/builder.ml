(** Concise construction DSL for instructions.

    Operands are given in Intel order (destination first), matching
    [Inst.t]. Typical usage:

    {[
      let open X86.Builder in
      [ add ~w:Q (r rdi) (i 1);
        mov ~w:D (r eax) (r edx);
        xor ~w:B (r al) (mb ~base:rdi ~disp:(-1) ()) ]
    ]} *)

let r reg = Operand.Reg reg
let i n = Operand.Imm (Int64.of_int n)
let i64 n = Operand.Imm n

let mb ?base ?index ?(scale = 1) ?(disp = 0) () =
  Operand.mem ?base ?index ~scale ~disp:(Int64.of_int disp) ()

let mk = Inst.make

(* Integer two-operand ops, default 64-bit. *)
let mov ?(w = Width.Q) dst src = mk ~width:w Opcode.Mov [ dst; src ]
let add ?(w = Width.Q) dst src = mk ~width:w Opcode.Add [ dst; src ]
let sub ?(w = Width.Q) dst src = mk ~width:w Opcode.Sub [ dst; src ]
let adc ?(w = Width.Q) dst src = mk ~width:w Opcode.Adc [ dst; src ]
let sbb ?(w = Width.Q) dst src = mk ~width:w Opcode.Sbb [ dst; src ]
let and_ ?(w = Width.Q) dst src = mk ~width:w Opcode.And [ dst; src ]
let or_ ?(w = Width.Q) dst src = mk ~width:w Opcode.Or [ dst; src ]
let xor ?(w = Width.Q) dst src = mk ~width:w Opcode.Xor [ dst; src ]
let cmp ?(w = Width.Q) a b = mk ~width:w Opcode.Cmp [ a; b ]
let test ?(w = Width.Q) a b = mk ~width:w Opcode.Test [ a; b ]
let xchg ?(w = Width.Q) a b = mk ~width:w Opcode.Xchg [ a; b ]
let lea ?(w = Width.Q) dst src = mk ~width:w Opcode.Lea [ dst; src ]

let inc ?(w = Width.Q) dst = mk ~width:w Opcode.Inc [ dst ]
let dec ?(w = Width.Q) dst = mk ~width:w Opcode.Dec [ dst ]
let neg ?(w = Width.Q) dst = mk ~width:w Opcode.Neg [ dst ]
let not_ ?(w = Width.Q) dst = mk ~width:w Opcode.Not [ dst ]
let bswap ?(w = Width.Q) dst = mk ~width:w Opcode.Bswap [ dst ]

let shl ?(w = Width.Q) dst amount = mk ~width:w Opcode.Shl [ dst; amount ]
let shr ?(w = Width.Q) dst amount = mk ~width:w Opcode.Shr [ dst; amount ]
let sar ?(w = Width.Q) dst amount = mk ~width:w Opcode.Sar [ dst; amount ]
let rol ?(w = Width.Q) dst amount = mk ~width:w Opcode.Rol [ dst; amount ]
let ror ?(w = Width.Q) dst amount = mk ~width:w Opcode.Ror [ dst; amount ]

let shld ?(w = Width.Q) dst src amount = mk ~width:w Opcode.Shld [ dst; src; amount ]
let shrd ?(w = Width.Q) dst src amount = mk ~width:w Opcode.Shrd [ dst; src; amount ]

let imul ?(w = Width.Q) dst src = mk ~width:w Opcode.Imul_rr [ dst; src ]
let imul3 ?(w = Width.Q) dst src imm = mk ~width:w Opcode.Imul_rr [ dst; src; imm ]
let mul1 ?(w = Width.Q) src = mk ~width:w Opcode.Mul_1 [ src ]
let imul1 ?(w = Width.Q) src = mk ~width:w Opcode.Imul_1 [ src ]
let div ?(w = Width.Q) src = mk ~width:w Opcode.Div [ src ]
let idiv ?(w = Width.Q) src = mk ~width:w Opcode.Idiv [ src ]
let cdq = mk ~width:Width.D Opcode.Cdq []
let cqo = mk ~width:Width.Q Opcode.Cqo []

let movzx ?(from = Width.B) ?(w = Width.D) dst src =
  mk ~width:w (Opcode.Movzx from) [ dst; src ]

let movsx ?(from = Width.B) ?(w = Width.D) dst src =
  mk ~width:w (Opcode.Movsx from) [ dst; src ]

let movsxd dst src = mk ~width:Width.Q Opcode.Movsxd [ dst; src ]

let cmov ?(w = Width.Q) cond dst src = mk ~width:w (Opcode.Cmov cond) [ dst; src ]
let set cond dst = mk ~width:Width.B (Opcode.Set cond) [ dst ]

let push src = mk ~width:Width.Q Opcode.Push [ src ]
let pop dst = mk ~width:Width.Q Opcode.Pop [ dst ]

let bsf ?(w = Width.Q) dst src = mk ~width:w Opcode.Bsf [ dst; src ]
let bsr ?(w = Width.Q) dst src = mk ~width:w Opcode.Bsr [ dst; src ]
let popcnt ?(w = Width.Q) dst src = mk ~width:w Opcode.Popcnt [ dst; src ]
let lzcnt ?(w = Width.Q) dst src = mk ~width:w Opcode.Lzcnt [ dst; src ]
let tzcnt ?(w = Width.Q) dst src = mk ~width:w Opcode.Tzcnt [ dst; src ]
let bt ?(w = Width.Q) a b = mk ~width:w Opcode.Bt [ a; b ]
let bts ?(w = Width.Q) a b = mk ~width:w Opcode.Bts [ a; b ]
let btr ?(w = Width.Q) a b = mk ~width:w Opcode.Btr [ a; b ]
let andn ?(w = Width.Q) dst s1 s2 = mk ~width:w Opcode.Andn [ dst; s1; s2 ]
let blsi ?(w = Width.Q) dst src = mk ~width:w Opcode.Blsi [ dst; src ]
let blsr ?(w = Width.Q) dst src = mk ~width:w Opcode.Blsr [ dst; src ]
let bextr ?(w = Width.Q) dst src ctl = mk ~width:w Opcode.Bextr [ dst; src; ctl ]
let crc32 ?(w = Width.Q) dst src = mk ~width:w Opcode.Crc32 [ dst; src ]
let nop = mk Opcode.Nop []

let jmp target = mk Opcode.Jmp [ target ]
let jcc cond target = mk (Opcode.Jcc cond) [ target ]
let ret = mk Opcode.Ret []

(* Vector moves *)
let movaps dst src = mk (Opcode.Movap Opcode.Ps) [ dst; src ]
let movapd dst src = mk (Opcode.Movap Opcode.Pd) [ dst; src ]
let movups dst src = mk (Opcode.Movup Opcode.Ps) [ dst; src ]
let movupd dst src = mk (Opcode.Movup Opcode.Pd) [ dst; src ]
let movss dst src = mk (Opcode.Movs_x Opcode.Ss) [ dst; src ]
let movsd_x dst src = mk (Opcode.Movs_x Opcode.Sd) [ dst; src ]
let movdqa dst src = mk Opcode.Movdqa [ dst; src ]
let movdqu dst src = mk Opcode.Movdqu [ dst; src ]
let movd dst src = mk ~width:Width.D Opcode.Movd [ dst; src ]
let movq_x dst src = mk ~width:Width.Q Opcode.Movq_x [ dst; src ]
let movntps dst src = mk (Opcode.Movnt Opcode.Ps) [ dst; src ]

(* Vector FP arithmetic; SSE 2-operand or AVX 3-operand depending on the
   number of arguments. *)
let vec2 opcode dst src = mk opcode [ dst; src ]
let vec3 opcode dst s1 s2 = mk opcode [ dst; s1; s2 ]

let addps dst src = vec2 (Opcode.Fadd Opcode.Ps) dst src
let addpd dst src = vec2 (Opcode.Fadd Opcode.Pd) dst src
let addss dst src = vec2 (Opcode.Fadd Opcode.Ss) dst src
let addsd dst src = vec2 (Opcode.Fadd Opcode.Sd) dst src
let subps dst src = vec2 (Opcode.Fsub Opcode.Ps) dst src
let subss dst src = vec2 (Opcode.Fsub Opcode.Ss) dst src
let subsd dst src = vec2 (Opcode.Fsub Opcode.Sd) dst src
let mulps dst src = vec2 (Opcode.Fmul Opcode.Ps) dst src
let mulpd dst src = vec2 (Opcode.Fmul Opcode.Pd) dst src
let mulss dst src = vec2 (Opcode.Fmul Opcode.Ss) dst src
let mulsd dst src = vec2 (Opcode.Fmul Opcode.Sd) dst src
let divps dst src = vec2 (Opcode.Fdiv Opcode.Ps) dst src
let divss dst src = vec2 (Opcode.Fdiv Opcode.Ss) dst src
let divsd dst src = vec2 (Opcode.Fdiv Opcode.Sd) dst src
let sqrtss dst src = vec2 (Opcode.Fsqrt Opcode.Ss) dst src
let sqrtsd dst src = vec2 (Opcode.Fsqrt Opcode.Sd) dst src
let sqrtps dst src = vec2 (Opcode.Fsqrt Opcode.Ps) dst src
let minps dst src = vec2 (Opcode.Fmin Opcode.Ps) dst src
let maxps dst src = vec2 (Opcode.Fmax Opcode.Ps) dst src
let minss dst src = vec2 (Opcode.Fmin Opcode.Ss) dst src
let maxss dst src = vec2 (Opcode.Fmax Opcode.Ss) dst src
let andps dst src = vec2 (Opcode.Fand Opcode.Ps) dst src
let orps dst src = vec2 (Opcode.For_ Opcode.Ps) dst src
let xorps dst src = vec2 (Opcode.Fxor Opcode.Ps) dst src
let xorpd dst src = vec2 (Opcode.Fxor Opcode.Pd) dst src
let vxorps dst s1 s2 = vec3 (Opcode.Fxor Opcode.Ps) dst s1 s2
let vaddps dst s1 s2 = vec3 (Opcode.Fadd Opcode.Ps) dst s1 s2
let vmulps dst s1 s2 = vec3 (Opcode.Fmul Opcode.Ps) dst s1 s2
let vaddpd dst s1 s2 = vec3 (Opcode.Fadd Opcode.Pd) dst s1 s2
let vmulpd dst s1 s2 = vec3 (Opcode.Fmul Opcode.Pd) dst s1 s2
let ucomiss a b = vec2 (Opcode.Ucomis Opcode.Ss) a b
let ucomisd a b = vec2 (Opcode.Ucomis Opcode.Sd) a b
let haddps dst src = vec2 (Opcode.Haddp Opcode.Ps) dst src

(* Conversions *)
let cvtsi2ss ?(w = Width.D) dst src = mk ~width:w (Opcode.Cvtsi2 Opcode.Ss) [ dst; src ]
let cvtsi2sd ?(w = Width.D) dst src = mk ~width:w (Opcode.Cvtsi2 Opcode.Sd) [ dst; src ]
let cvttss2si ?(w = Width.D) dst src = mk ~width:w (Opcode.Cvt2si (Opcode.Ss, true)) [ dst; src ]
let cvttsd2si ?(w = Width.D) dst src = mk ~width:w (Opcode.Cvt2si (Opcode.Sd, true)) [ dst; src ]
let cvtss2sd dst src = mk Opcode.Cvtss2sd [ dst; src ]
let cvtsd2ss dst src = mk Opcode.Cvtsd2ss [ dst; src ]
let cvtdq2ps dst src = mk Opcode.Cvtdq2ps [ dst; src ]
let cvtps2dq dst src = mk Opcode.Cvtps2dq [ dst; src ]

(* Shuffles *)
let shufps dst src imm = mk (Opcode.Shufp Opcode.Ps) [ dst; src; imm ]
let unpcklps dst src = mk (Opcode.Unpckl Opcode.Ps) [ dst; src ]
let unpckhps dst src = mk (Opcode.Unpckh Opcode.Ps) [ dst; src ]
let pshufd dst src imm = mk Opcode.Pshufd [ dst; src; imm ]
let pshufb dst src = mk Opcode.Pshufb [ dst; src ]
let movmskps dst src = mk ~width:Width.D (Opcode.Movmsk Opcode.Ps) [ dst; src ]
let pmovmskb dst src = mk ~width:Width.D Opcode.Pmovmskb [ dst; src ]

(* Integer vector *)
let paddb dst src = vec2 (Opcode.Padd Opcode.I8) dst src
let paddw dst src = vec2 (Opcode.Padd Opcode.I16) dst src
let paddd dst src = vec2 (Opcode.Padd Opcode.I32) dst src
let paddq dst src = vec2 (Opcode.Padd Opcode.I64) dst src
let psubb dst src = vec2 (Opcode.Psub Opcode.I8) dst src
let psubd dst src = vec2 (Opcode.Psub Opcode.I32) dst src
let pmulld dst src = vec2 (Opcode.Pmull Opcode.I32) dst src
let pmullw dst src = vec2 (Opcode.Pmull Opcode.I16) dst src
let pmuludq dst src = vec2 Opcode.Pmuludq dst src
let pmaddwd dst src = vec2 Opcode.Pmaddwd dst src
let pand dst src = vec2 Opcode.Pand dst src
let por dst src = vec2 Opcode.Por dst src
let pxor dst src = vec2 Opcode.Pxor dst src
let pandn dst src = vec2 Opcode.Pandn dst src
let pcmpeqb dst src = vec2 (Opcode.Pcmpeq Opcode.I8) dst src
let pcmpeqd dst src = vec2 (Opcode.Pcmpeq Opcode.I32) dst src
let pcmpgtd dst src = vec2 (Opcode.Pcmpgt Opcode.I32) dst src
let pmaxsd dst src = vec2 (Opcode.Pmaxs Opcode.I32) dst src
let pminud dst src = vec2 (Opcode.Pminu Opcode.I32) dst src
let pslld dst amount = mk (Opcode.Psll Opcode.I32) [ dst; amount ]
let psllq dst amount = mk (Opcode.Psll Opcode.I64) [ dst; amount ]
let psrld dst amount = mk (Opcode.Psrl Opcode.I32) [ dst; amount ]
let psrlq dst amount = mk (Opcode.Psrl Opcode.I64) [ dst; amount ]
let psrad dst amount = mk (Opcode.Psra Opcode.I32) [ dst; amount ]
let punpckldq dst src = vec2 (Opcode.Punpckl Opcode.I32) dst src
let punpcklbw dst src = vec2 (Opcode.Punpckl Opcode.I8) dst src
let packsswb dst src = vec2 (Opcode.Packss Opcode.I16) dst src
let ptest a b = vec2 Opcode.Ptest a b
let pextrd dst src imm = mk ~width:Width.D (Opcode.Pextr Opcode.I32) [ dst; src; imm ]
let pinsrd dst src imm = mk ~width:Width.D (Opcode.Pinsr Opcode.I32) [ dst; src; imm ]

(* FMA *)
let vfmadd231ps dst s1 s2 = vec3 (Opcode.Vfmadd (231, Opcode.Ps)) dst s1 s2
let vfmadd231pd dst s1 s2 = vec3 (Opcode.Vfmadd (231, Opcode.Pd)) dst s1 s2
let vfmadd231ss dst s1 s2 = vec3 (Opcode.Vfmadd (231, Opcode.Ss)) dst s1 s2
let vfmadd231sd dst s1 s2 = vec3 (Opcode.Vfmadd (231, Opcode.Sd)) dst s1 s2
let vfmadd213ps dst s1 s2 = vec3 (Opcode.Vfmadd (213, Opcode.Ps)) dst s1 s2
let vfnmadd231ps dst s1 s2 = vec3 (Opcode.Vfnmadd (231, Opcode.Ps)) dst s1 s2

(* AVX lane ops *)
let vbroadcastss dst src = mk (Opcode.Vbroadcast Opcode.Ss) [ dst; src ]
let vbroadcastsd dst src = mk (Opcode.Vbroadcast Opcode.Sd) [ dst; src ]
let vinsertf128 dst s1 s2 imm = mk Opcode.Vinsertf128 [ dst; s1; s2; imm ]
let vextractf128 dst src imm = mk Opcode.Vextractf128 [ dst; src; imm ]
let vzeroupper = mk Opcode.Vzeroupper []
