(** Instruction operands: immediates, registers, and memory references. *)

type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;  (** 1, 2, 4 or 8 *)
  disp : int64;
}

type t =
  | Imm of int64
  | Reg of Reg.t
  | Mem of mem

let imm i = Imm i
let immi i = Imm (Int64.of_int i)
let reg r = Reg r

let mem ?base ?index ?(scale = 1) ?(disp = 0L) () =
  if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
    invalid_arg (Printf.sprintf "Operand.mem: bad scale %d" scale);
  (match index with
  | Some r when not (Reg.is_gpr r) -> invalid_arg "Operand.mem: index must be a GPR"
  | _ -> ());
  Mem { base; index; scale; disp }

let is_mem = function Mem _ -> true | _ -> false
let is_reg = function Reg _ -> true | _ -> false
let is_imm = function Imm _ -> true | _ -> false

let equal_mem (a : mem) b =
  (match (a.base, b.base) with
  | None, None -> true
  | Some x, Some y -> Reg.equal x y
  | _ -> false)
  && (match (a.index, b.index) with
     | None, None -> true
     | Some x, Some y -> Reg.equal x y
     | _ -> false)
  && a.scale = b.scale
  && Int64.equal a.disp b.disp

let equal a b =
  match (a, b) with
  | Imm x, Imm y -> Int64.equal x y
  | Reg x, Reg y -> Reg.equal x y
  | Mem x, Mem y -> equal_mem x y
  | _ -> false

(* Registers read when computing the effective address of [m]. *)
let mem_regs (m : mem) =
  let add acc = function Some r -> r :: acc | None -> acc in
  add (add [] m.index) m.base

(* Registers this operand reads when used as a source. *)
let source_regs = function
  | Imm _ -> []
  | Reg r -> [ r ]
  | Mem m -> mem_regs m

let pp_mem fmt (m : mem) =
  (* AT&T: disp(base, index, scale); negative displacements print signed. *)
  if not (Int64.equal m.disp 0L) || (m.base = None && m.index = None) then
    if Int64.compare m.disp 0L < 0 then Format.fprintf fmt "-0x%Lx" (Int64.neg m.disp)
    else Format.fprintf fmt "0x%Lx" m.disp;
  match (m.base, m.index) with
  | None, None -> ()
  | Some b, None -> Format.fprintf fmt "(%%%s)" (Reg.name b)
  | None, Some i -> Format.fprintf fmt "(, %%%s, %d)" (Reg.name i) m.scale
  | Some b, Some i ->
    Format.fprintf fmt "(%%%s, %%%s, %d)" (Reg.name b) (Reg.name i) m.scale

let pp fmt = function
  | Imm i ->
    if Int64.compare i 0L >= 0 && Int64.compare i 4096L < 0 then
      Format.fprintf fmt "$%Ld" i
    else Format.fprintf fmt "$0x%Lx" i
  | Reg r -> Format.fprintf fmt "%%%s" (Reg.name r)
  | Mem m -> pp_mem fmt m

let to_string t = Format.asprintf "%a" pp t
