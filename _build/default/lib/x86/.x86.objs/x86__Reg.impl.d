lib/x86/reg.ml: Format List Printf Stdlib String Width
