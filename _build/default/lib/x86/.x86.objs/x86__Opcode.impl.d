lib/x86/opcode.ml: Cond Format List Printf Stdlib Width
