lib/x86/parser.ml: Buffer Hashtbl Inst Int64 List Opcode Operand Option Printf Reg String Width
