lib/x86/cond.ml: Format Printf
