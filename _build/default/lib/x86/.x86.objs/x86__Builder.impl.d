lib/x86/builder.ml: Inst Int64 Opcode Operand Width
