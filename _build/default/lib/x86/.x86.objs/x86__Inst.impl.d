lib/x86/inst.ml: Format List Opcode Operand Printf Reg Width
