lib/x86/encoder.ml: Array Buffer Bytes Char Hashtbl Inst Int64 List Opcode Operand Printf Reg Width
