lib/x86/width.ml: Format Int64 Printf Stdlib
