(** Integer operation widths for x86-64 general-purpose operations. *)

type t =
  | B  (** 8-bit *)
  | W  (** 16-bit *)
  | D  (** 32-bit *)
  | Q  (** 64-bit *)

let bytes = function B -> 1 | W -> 2 | D -> 4 | Q -> 8
let bits t = 8 * bytes t

let of_bytes = function
  | 1 -> B
  | 2 -> W
  | 4 -> D
  | 8 -> Q
  | n -> invalid_arg (Printf.sprintf "Width.of_bytes: %d" n)

(* AT&T mnemonic suffix for this width. *)
let suffix = function B -> "b" | W -> "w" | D -> "l" | Q -> "q"

let to_string = function B -> "B" | W -> "W" | D -> "D" | Q -> "Q"
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Mask keeping only the low [bits t] bits of a 64-bit value. *)
let mask = function
  | B -> 0xFFL
  | W -> 0xFFFFL
  | D -> 0xFFFFFFFFL
  | Q -> 0xFFFFFFFFFFFFFFFFL

(* Truncate a 64-bit value to this width (zero-extending semantics). *)
let truncate t v = Int64.logand v (mask t)

(* Sign-extend the low [bits t] bits of [v] to 64 bits. *)
let sign_extend t v =
  match t with
  | Q -> v
  | _ ->
    let shift = 64 - bits t in
    Int64.shift_right (Int64.shift_left v shift) shift

let all = [ B; W; D; Q ]
