(** Opcode mnemonics for the modelled x86-64 subset.

    The subset is chosen to cover the instruction mix of the BHive corpus:
    scalar integer ALU and data movement, bit manipulation, widening
    multiply/divide, SSE/SSE2/SSE4 and AVX/AVX2 floating point and integer
    vector operations, and FMA. Control flow opcodes exist only so the
    dynamic tracer can decode whole functions; measured basic blocks never
    contain them (BHive strips block terminators). *)

type fp_prec =
  | Ss  (** scalar single *)
  | Sd  (** scalar double *)
  | Ps  (** packed single *)
  | Pd  (** packed double *)

type int_lane = I8 | I16 | I32 | I64

type t =
  (* Integer data movement *)
  | Mov
  | Movzx of Width.t  (** payload = source width *)
  | Movsx of Width.t  (** payload = source width *)
  | Movsxd
  | Lea
  | Push
  | Pop
  | Xchg
  | Cmov of Cond.t
  | Set of Cond.t
  (* Integer ALU *)
  | Add
  | Sub
  | Adc
  | Sbb
  | And
  | Or
  | Xor
  | Cmp
  | Test
  | Inc
  | Dec
  | Neg
  | Not
  | Shl
  | Shr
  | Sar
  | Rol
  | Ror
  | Shld
  | Shrd
  | Imul_rr  (** two- or three-operand imul *)
  | Mul_1  (** one-operand unsigned widening multiply *)
  | Imul_1  (** one-operand signed widening multiply *)
  | Div
  | Idiv
  | Cdq
  | Cqo
  | Bsf
  | Bsr
  | Popcnt
  | Lzcnt
  | Tzcnt
  | Bswap
  | Bt
  | Bts
  | Btr
  | Btc
  | Andn
  | Blsi
  | Blsr
  | Blsmsk
  | Bextr
  | Crc32
  | Nop
  (* Control flow (tracer only) *)
  | Jmp
  | Jcc of Cond.t
  | Call
  | Ret
  (* Vector data movement *)
  | Movap of fp_prec  (** movaps / movapd (Ps/Pd only) *)
  | Movup of fp_prec  (** movups / movupd (Ps/Pd only) *)
  | Movs_x of fp_prec  (** movss / movsd (Ss/Sd only) *)
  | Movdqa
  | Movdqu
  | Movd  (** 32-bit gpr/mem <-> xmm *)
  | Movq_x  (** 64-bit gpr/mem <-> xmm *)
  | Lddqu
  | Movnt of fp_prec  (** non-temporal store *)
  (* FP arithmetic *)
  | Fadd of fp_prec
  | Fsub of fp_prec
  | Fmul of fp_prec
  | Fdiv of fp_prec
  | Fsqrt of fp_prec
  | Fmin of fp_prec
  | Fmax of fp_prec
  | Fand of fp_prec  (** andps/andpd *)
  | Fandn of fp_prec
  | For_ of fp_prec
  | Fxor of fp_prec  (** xorps/xorpd *)
  | Ucomis of fp_prec  (** Ss/Sd *)
  | Cmp_fp of fp_prec  (** cmpps/cmpss etc., predicate in immediate *)
  | Haddp of fp_prec  (** Ps/Pd *)
  | Round of fp_prec
  | Rcp of fp_prec  (** Ss/Ps *)
  | Rsqrt of fp_prec  (** Ss/Ps *)
  (* FP conversions *)
  | Cvtsi2 of fp_prec  (** Ss/Sd *)
  | Cvt2si of fp_prec * bool  (** bool = truncating; Ss/Sd *)
  | Cvtss2sd
  | Cvtsd2ss
  | Cvtdq2ps
  | Cvtps2dq
  | Cvttps2dq
  | Cvtdq2pd
  | Cvtps2pd
  | Cvtpd2ps
  (* FP shuffles *)
  | Shufp of fp_prec  (** Ps/Pd *)
  | Unpckl of fp_prec  (** Ps/Pd *)
  | Unpckh of fp_prec  (** Ps/Pd *)
  | Movmsk of fp_prec  (** Ps/Pd *)
  | Blendp of fp_prec  (** Ps/Pd, imm mask *)
  (* Integer vector *)
  | Padd of int_lane
  | Psub of int_lane
  | Pmull of int_lane  (** I16/I32 *)
  | Pmuludq
  | Pmaddwd
  | Pand
  | Pandn
  | Por
  | Pxor
  | Pcmpeq of int_lane
  | Pcmpgt of int_lane
  | Pmaxs of int_lane
  | Pmins of int_lane
  | Pmaxu of int_lane
  | Pminu of int_lane
  | Pabs of int_lane  (** I8/I16/I32 *)
  | Pavg of int_lane  (** I8/I16 *)
  | Psll of int_lane  (** I16/I32/I64 *)
  | Psrl of int_lane
  | Psra of int_lane  (** I16/I32 *)
  | Pslldq
  | Psrldq
  | Pshufd
  | Pshufb
  | Palignr
  | Punpckl of int_lane
  | Punpckh of int_lane
  | Packss of int_lane  (** I16/I32 *)
  | Packus of int_lane  (** I16/I32 *)
  | Pmovmskb
  | Ptest
  | Pextr of int_lane  (** xmm lane -> gpr/mem *)
  | Pinsr of int_lane  (** gpr/mem -> xmm lane *)
  (* FMA (AVX2 class) *)
  | Vfmadd of int * fp_prec  (** form 132/213/231 *)
  | Vfmsub of int * fp_prec
  | Vfnmadd of int * fp_prec
  (* AVX lane manipulation *)
  | Vbroadcast of fp_prec  (** Ss/Sd *)
  | Vinsertf128
  | Vextractf128
  | Vperm2f128
  | Vzeroupper

let fp_prec_suffix = function Ss -> "ss" | Sd -> "sd" | Ps -> "ps" | Pd -> "pd"

let int_lane_suffix = function I8 -> "b" | I16 -> "w" | I32 -> "d" | I64 -> "q"

let int_lane_bytes = function I8 -> 1 | I16 -> 2 | I32 -> 4 | I64 -> 8

(* Base mnemonic, without AT&T width suffix and without AVX 'v' prefix. *)
let mnemonic = function
  | Mov -> "mov"
  | Movzx w -> "movz" ^ Width.suffix w
  | Movsx w -> "movs" ^ Width.suffix w
  | Movsxd -> "movslq"
  | Lea -> "lea"
  | Push -> "push"
  | Pop -> "pop"
  | Xchg -> "xchg"
  | Cmov c -> "cmov" ^ Cond.to_string c
  | Set c -> "set" ^ Cond.to_string c
  | Add -> "add"
  | Sub -> "sub"
  | Adc -> "adc"
  | Sbb -> "sbb"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Cmp -> "cmp"
  | Test -> "test"
  | Inc -> "inc"
  | Dec -> "dec"
  | Neg -> "neg"
  | Not -> "not"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Rol -> "rol"
  | Ror -> "ror"
  | Shld -> "shld"
  | Shrd -> "shrd"
  | Imul_rr -> "imul"
  | Mul_1 -> "mul"
  | Imul_1 -> "imul"
  | Div -> "div"
  | Idiv -> "idiv"
  | Cdq -> "cdq"
  | Cqo -> "cqo"
  | Bsf -> "bsf"
  | Bsr -> "bsr"
  | Popcnt -> "popcnt"
  | Lzcnt -> "lzcnt"
  | Tzcnt -> "tzcnt"
  | Bswap -> "bswap"
  | Bt -> "bt"
  | Bts -> "bts"
  | Btr -> "btr"
  | Btc -> "btc"
  | Andn -> "andn"
  | Blsi -> "blsi"
  | Blsr -> "blsr"
  | Blsmsk -> "blsmsk"
  | Bextr -> "bextr"
  | Crc32 -> "crc32"
  | Nop -> "nop"
  | Jmp -> "jmp"
  | Jcc c -> "j" ^ Cond.to_string c
  | Call -> "call"
  | Ret -> "ret"
  | Movap p -> "mova" ^ fp_prec_suffix p
  | Movup p -> "movu" ^ fp_prec_suffix p
  | Movs_x p -> "mov" ^ fp_prec_suffix p
  | Movdqa -> "movdqa"
  | Movdqu -> "movdqu"
  | Movd -> "movd"
  | Movq_x -> "movq"
  | Lddqu -> "lddqu"
  | Movnt p -> "movnt" ^ fp_prec_suffix p
  | Fadd p -> "add" ^ fp_prec_suffix p
  | Fsub p -> "sub" ^ fp_prec_suffix p
  | Fmul p -> "mul" ^ fp_prec_suffix p
  | Fdiv p -> "div" ^ fp_prec_suffix p
  | Fsqrt p -> "sqrt" ^ fp_prec_suffix p
  | Fmin p -> "min" ^ fp_prec_suffix p
  | Fmax p -> "max" ^ fp_prec_suffix p
  | Fand p -> "and" ^ fp_prec_suffix p
  | Fandn p -> "andn" ^ fp_prec_suffix p
  | For_ p -> "or" ^ fp_prec_suffix p
  | Fxor p -> "xor" ^ fp_prec_suffix p
  | Ucomis p -> "ucomis" ^ (match p with Ss -> "s" | _ -> "d")
  | Cmp_fp p -> "cmp" ^ fp_prec_suffix p
  | Haddp p -> "hadd" ^ fp_prec_suffix p
  | Round p -> "round" ^ fp_prec_suffix p
  | Rcp p -> "rcp" ^ fp_prec_suffix p
  | Rsqrt p -> "rsqrt" ^ fp_prec_suffix p
  | Cvtsi2 p -> "cvtsi2" ^ fp_prec_suffix p
  | Cvt2si (p, t) -> "cvt" ^ (if t then "t" else "") ^ fp_prec_suffix p ^ "2si"
  | Cvtss2sd -> "cvtss2sd"
  | Cvtsd2ss -> "cvtsd2ss"
  | Cvtdq2ps -> "cvtdq2ps"
  | Cvtps2dq -> "cvtps2dq"
  | Cvttps2dq -> "cvttps2dq"
  | Cvtdq2pd -> "cvtdq2pd"
  | Cvtps2pd -> "cvtps2pd"
  | Cvtpd2ps -> "cvtpd2ps"
  | Shufp p -> "shuf" ^ fp_prec_suffix p
  | Unpckl p -> "unpckl" ^ fp_prec_suffix p
  | Unpckh p -> "unpckh" ^ fp_prec_suffix p
  | Movmsk p -> "movmsk" ^ fp_prec_suffix p
  | Blendp p -> "blend" ^ fp_prec_suffix p
  | Padd l -> "padd" ^ int_lane_suffix l
  | Psub l -> "psub" ^ int_lane_suffix l
  | Pmull l -> "pmull" ^ int_lane_suffix l
  | Pmuludq -> "pmuludq"
  | Pmaddwd -> "pmaddwd"
  | Pand -> "pand"
  | Pandn -> "pandn"
  | Por -> "por"
  | Pxor -> "pxor"
  | Pcmpeq l -> "pcmpeq" ^ int_lane_suffix l
  | Pcmpgt l -> "pcmpgt" ^ int_lane_suffix l
  | Pmaxs l -> "pmaxs" ^ int_lane_suffix l
  | Pmins l -> "pmins" ^ int_lane_suffix l
  | Pmaxu l -> "pmaxu" ^ int_lane_suffix l
  | Pminu l -> "pminu" ^ int_lane_suffix l
  | Pabs l -> "pabs" ^ int_lane_suffix l
  | Pavg l -> "pavg" ^ int_lane_suffix l
  | Psll l -> "psll" ^ int_lane_suffix l
  | Psrl l -> "psrl" ^ int_lane_suffix l
  | Psra l -> "psra" ^ int_lane_suffix l
  | Pslldq -> "pslldq"
  | Psrldq -> "psrldq"
  | Pshufd -> "pshufd"
  | Pshufb -> "pshufb"
  | Palignr -> "palignr"
  | Punpckl l -> "punpckl" ^ (match l with I8 -> "bw" | I16 -> "wd" | I32 -> "dq" | I64 -> "qdq")
  | Punpckh l -> "punpckh" ^ (match l with I8 -> "bw" | I16 -> "wd" | I32 -> "dq" | I64 -> "qdq")
  | Packss l -> "packss" ^ (match l with I16 -> "wb" | _ -> "dw")
  | Packus l -> "packus" ^ (match l with I16 -> "wb" | _ -> "dw")
  | Pmovmskb -> "pmovmskb"
  | Ptest -> "ptest"
  | Pextr l -> "pextr" ^ int_lane_suffix l
  | Pinsr l -> "pinsr" ^ int_lane_suffix l
  | Vfmadd (f, p) -> Printf.sprintf "fmadd%d%s" f (fp_prec_suffix p)
  | Vfmsub (f, p) -> Printf.sprintf "fmsub%d%s" f (fp_prec_suffix p)
  | Vfnmadd (f, p) -> Printf.sprintf "fnmadd%d%s" f (fp_prec_suffix p)
  | Vbroadcast p -> "broadcast" ^ fp_prec_suffix p
  | Vinsertf128 -> "insertf128"
  | Vextractf128 -> "extractf128"
  | Vperm2f128 -> "perm2f128"
  | Vzeroupper -> "zeroupper"

let is_control_flow = function Jmp | Jcc _ | Call | Ret -> true | _ -> false

(* Does this opcode operate on vector (XMM/YMM) registers? *)
let is_vector = function
  | Movap _ | Movup _ | Movs_x _ | Movdqa | Movdqu | Movd | Movq_x | Lddqu
  | Movnt _ | Fadd _ | Fsub _ | Fmul _ | Fdiv _ | Fsqrt _ | Fmin _ | Fmax _
  | Fand _ | Fandn _ | For_ _ | Fxor _ | Ucomis _ | Cmp_fp _ | Haddp _
  | Round _ | Rcp _ | Rsqrt _ | Cvtsi2 _ | Cvt2si _ | Cvtss2sd | Cvtsd2ss
  | Cvtdq2ps | Cvtps2dq | Cvttps2dq | Cvtdq2pd | Cvtps2pd | Cvtpd2ps
  | Shufp _ | Unpckl _ | Unpckh _ | Movmsk _ | Blendp _ | Padd _ | Psub _
  | Pmull _ | Pmuludq | Pmaddwd | Pand | Pandn | Por | Pxor | Pcmpeq _
  | Pcmpgt _ | Pmaxs _ | Pmins _ | Pmaxu _ | Pminu _ | Pabs _ | Pavg _
  | Psll _ | Psrl _ | Psra _ | Pslldq | Psrldq | Pshufd | Pshufb | Palignr
  | Punpckl _ | Punpckh _ | Packss _ | Packus _ | Pmovmskb | Ptest | Pextr _
  | Pinsr _ | Vfmadd _ | Vfmsub _ | Vfnmadd _ | Vbroadcast _ | Vinsertf128
  | Vextractf128 | Vperm2f128 | Vzeroupper -> true
  | _ -> false

(* Floating-point data path (subject to subnormal assists)? *)
let is_fp_arith = function
  | Fadd _ | Fsub _ | Fmul _ | Fdiv _ | Fsqrt _ | Fmin _ | Fmax _ | Haddp _
  | Ucomis _ | Cmp_fp _ | Round _ | Rcp _ | Rsqrt _ | Cvtss2sd | Cvtsd2ss
  | Cvtsi2 _ | Cvt2si _ | Cvtdq2ps | Cvtps2dq | Cvttps2dq | Cvtdq2pd
  | Cvtps2pd | Cvtpd2ps | Vfmadd _ | Vfmsub _ | Vfnmadd _ -> true
  | _ -> false

(* Instructions only available with AVX2/FMA extensions; blocks containing
   them are excluded from Ivy Bridge validation (paper, Results). *)
let requires_avx2 = function
  | Vfmadd _ | Vfmsub _ | Vfnmadd _ -> true
  | _ -> false

let writes_flags = function
  | Add | Sub | Adc | Sbb | And | Or | Xor | Cmp | Test | Inc | Dec | Neg
  | Shl | Shr | Sar | Rol | Ror | Shld | Shrd | Imul_rr | Mul_1 | Imul_1
  | Div | Idiv | Bsf | Bsr | Popcnt | Lzcnt | Tzcnt | Bt | Bts | Btr | Btc
  | Andn | Blsi | Blsr | Blsmsk | Bextr | Ucomis _ | Ptest -> true
  | _ -> false

let reads_flags = function
  | Adc | Sbb | Cmov _ | Set _ | Jcc _ -> true
  | _ -> false

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp fmt t = Format.pp_print_string fmt (mnemonic t)

let all_fp_precs = [ Ss; Sd; Ps; Pd ]
let packed_precs = [ Ps; Pd ]
let scalar_precs = [ Ss; Sd ]
let all_int_lanes = [ I8; I16; I32; I64 ]

(** Every opcode form the library models (parameterised constructors are
    instantiated at every legal payload). Used for parser tables and for
    exhaustiveness tests of the per-microarchitecture uop tables. *)
let all : t list =
  let conds c = List.map c Cond.all in
  let widths f = List.map f Width.all in
  let precs ps f = List.map f ps in
  let lanes ls f = List.map f ls in
  [ Mov; Movsxd; Lea; Push; Pop; Xchg; Add; Sub; Adc; Sbb; And; Or; Xor;
    Cmp; Test; Inc; Dec; Neg; Not; Shl; Shr; Sar; Rol; Ror; Shld; Shrd;
    Imul_rr; Mul_1; Imul_1; Div; Idiv; Cdq; Cqo; Bsf; Bsr; Popcnt; Lzcnt;
    Tzcnt; Bswap; Bt; Bts; Btr; Btc; Andn; Blsi; Blsr; Blsmsk; Bextr;
    Crc32; Nop; Jmp; Call; Ret; Movdqa; Movdqu; Movd; Movq_x; Lddqu;
    Pmuludq; Pmaddwd; Pand; Pandn; Por; Pxor; Pslldq; Psrldq; Pshufd;
    Pshufb; Palignr; Pmovmskb; Ptest; Cvtss2sd; Cvtsd2ss; Cvtdq2ps;
    Cvtps2dq; Cvttps2dq; Cvtdq2pd; Cvtps2pd; Cvtpd2ps; Vinsertf128;
    Vextractf128; Vperm2f128; Vzeroupper ]
  @ widths (fun w -> Movzx w)
  @ widths (fun w -> Movsx w)
  @ conds (fun c -> Cmov c)
  @ conds (fun c -> Set c)
  @ conds (fun c -> Jcc c)
  @ precs packed_precs (fun p -> Movap p)
  @ precs packed_precs (fun p -> Movup p)
  @ precs scalar_precs (fun p -> Movs_x p)
  @ precs packed_precs (fun p -> Movnt p)
  @ precs all_fp_precs (fun p -> Fadd p)
  @ precs all_fp_precs (fun p -> Fsub p)
  @ precs all_fp_precs (fun p -> Fmul p)
  @ precs all_fp_precs (fun p -> Fdiv p)
  @ precs all_fp_precs (fun p -> Fsqrt p)
  @ precs all_fp_precs (fun p -> Fmin p)
  @ precs all_fp_precs (fun p -> Fmax p)
  @ precs packed_precs (fun p -> Fand p)
  @ precs packed_precs (fun p -> Fandn p)
  @ precs packed_precs (fun p -> For_ p)
  @ precs packed_precs (fun p -> Fxor p)
  @ precs scalar_precs (fun p -> Ucomis p)
  @ precs all_fp_precs (fun p -> Cmp_fp p)
  @ precs packed_precs (fun p -> Haddp p)
  @ precs all_fp_precs (fun p -> Round p)
  @ precs [ Ss; Ps ] (fun p -> Rcp p)
  @ precs [ Ss; Ps ] (fun p -> Rsqrt p)
  @ precs scalar_precs (fun p -> Cvtsi2 p)
  @ precs scalar_precs (fun p -> Cvt2si (p, false))
  @ precs scalar_precs (fun p -> Cvt2si (p, true))
  @ precs packed_precs (fun p -> Shufp p)
  @ precs packed_precs (fun p -> Unpckl p)
  @ precs packed_precs (fun p -> Unpckh p)
  @ precs packed_precs (fun p -> Movmsk p)
  @ precs packed_precs (fun p -> Blendp p)
  @ lanes all_int_lanes (fun l -> Padd l)
  @ lanes all_int_lanes (fun l -> Psub l)
  @ lanes [ I16; I32 ] (fun l -> Pmull l)
  @ lanes all_int_lanes (fun l -> Pcmpeq l)
  @ lanes [ I8; I16; I32; I64 ] (fun l -> Pcmpgt l)
  @ lanes [ I8; I16; I32 ] (fun l -> Pmaxs l)
  @ lanes [ I8; I16; I32 ] (fun l -> Pmins l)
  @ lanes [ I8; I16; I32 ] (fun l -> Pmaxu l)
  @ lanes [ I8; I16; I32 ] (fun l -> Pminu l)
  @ lanes [ I8; I16; I32 ] (fun l -> Pabs l)
  @ lanes [ I8; I16 ] (fun l -> Pavg l)
  @ lanes [ I16; I32; I64 ] (fun l -> Psll l)
  @ lanes [ I16; I32; I64 ] (fun l -> Psrl l)
  @ lanes [ I16; I32 ] (fun l -> Psra l)
  @ lanes all_int_lanes (fun l -> Punpckl l)
  @ lanes all_int_lanes (fun l -> Punpckh l)
  @ lanes [ I16; I32 ] (fun l -> Packss l)
  @ lanes [ I16; I32 ] (fun l -> Packus l)
  @ lanes [ I8; I16; I32; I64 ] (fun l -> Pextr l)
  @ lanes [ I8; I16; I32; I64 ] (fun l -> Pinsr l)
  @ List.concat_map
      (fun f -> precs all_fp_precs (fun p -> Vfmadd (f, p)))
      [ 132; 213; 231 ]
  @ List.concat_map
      (fun f -> precs all_fp_precs (fun p -> Vfmsub (f, p)))
      [ 132; 213; 231 ]
  @ List.concat_map
      (fun f -> precs all_fp_precs (fun p -> Vfnmadd (f, p)))
      [ 132; 213; 231 ]
  @ precs scalar_precs (fun p -> Vbroadcast p)
