(** Bootstrap confidence intervals for reported means.

    The paper reports point estimates; an open-source release should say
    how stable they are. [mean_ci] resamples the per-block errors with
    replacement and returns the percentile interval of the resampled
    means. Deterministic in the seed. *)

type interval = {
  mean : float;
  lo : float;
  hi : float;
  resamples : int;
}

let mean_ci ?(confidence = 0.95) ?(resamples = 1000) ?(seed = 0xB007L)
    (xs : float list) : interval =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then { mean = nan; lo = nan; hi = nan; resamples }
  else begin
    let rng = Rng.create seed in
    let mean_of_sample () =
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. arr.(Rng.int rng n)
      done;
      !sum /. float_of_int n
    in
    let means = Array.init resamples (fun _ -> mean_of_sample ()) in
    Array.sort compare means;
    let q p =
      let idx = int_of_float (p *. float_of_int (resamples - 1)) in
      means.(max 0 (min (resamples - 1) idx))
    in
    let alpha = (1.0 -. confidence) /. 2.0 in
    {
      mean = Error.average xs;
      lo = q alpha;
      hi = q (1.0 -. alpha);
      resamples;
    }
  end

let pp fmt t = Format.fprintf fmt "%.4f [%.4f, %.4f]" t.mean t.lo t.hi
