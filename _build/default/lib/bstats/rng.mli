(** Deterministic pseudo-random number generation (SplitMix64). All
    randomness in the suite derives from seeded instances, making every
    run exactly reproducible. *)

type t

val create : int64 -> t

val next_u64 : t -> int64

(** Uniform integer in [0, bound); raises on non-positive bounds. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Bernoulli trial with success probability [p]. *)
val bernoulli : t -> float -> bool

(** Uniform choice from a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Weighted choice; weights must sum to a positive value. *)
val choose_weighted : t -> (float * 'a) list -> 'a

(** Split off an independently seeded generator. *)
val split : t -> t

(** FNV-1a hash of a string, for deriving per-item seeds. *)
val seed_of_string : string -> int64
