(** Small descriptive-statistics helpers for report tables. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let of_list xs =
  let n = List.length xs in
  if n = 0 then { n = 0; mean = nan; stddev = nan; min = nan; max = nan; median = nan }
  else begin
    let mean = Error.average xs in
    let var =
      Error.average (List.map (fun x -> (x -. mean) *. (x -. mean)) xs)
    in
    {
      n;
      mean;
      stddev = sqrt var;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      median = Error.median xs;
    }
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f" t.n
    t.mean t.stddev t.min t.median t.max

(* Plain-text horizontal bar for terminal "figures". *)
let bar ?(width = 40) ~max_value value =
  let filled =
    if max_value <= 0.0 then 0
    else
      int_of_float (Float.round (float_of_int width *. value /. max_value))
  in
  let filled = max 0 (min width filled) in
  String.make filled '#' ^ String.make (width - filled) ' '
