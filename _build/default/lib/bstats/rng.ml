(** Deterministic pseudo-random number generation (SplitMix64).

    Everything in the benchmark suite that needs randomness (corpus
    generation, noise injection, LDA initialisation) derives from seeded
    instances of this generator so that runs are exactly reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int bound))

let float t =
  (* 53 random bits into [0,1) *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) in
  bits /. 9007199254740992.0

let bool t = Int64.equal (Int64.logand (next_u64 t) 1L) 1L

(* Bernoulli trial with probability [p]. *)
let bernoulli t p = float t < p

(* Pick uniformly from a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(* Pick from weighted choices. *)
let choose_weighted t (xs : (float * 'a) list) =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 xs in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: zero total weight";
  let target = float t *. total in
  let rec go acc = function
    | [] -> snd (List.hd (List.rev xs))
    | (w, x) :: rest -> if acc +. w >= target then x else go (acc +. w) rest
  in
  go 0.0 xs

(* Split off an independent generator (for nested deterministic use). *)
let split t = create (next_u64 t)

(* Derive a seed from a string (FNV-1a), for per-block determinism. *)
let seed_of_string s =
  let fnv_prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h
