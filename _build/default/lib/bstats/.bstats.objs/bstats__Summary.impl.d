lib/bstats/summary.ml: Error Float Format List String
