lib/bstats/rng.ml: Char Int64 List String
