lib/bstats/bootstrap.ml: Array Error Format Rng
