lib/bstats/error.ml: Float List
