lib/bstats/kendall.ml: Array
