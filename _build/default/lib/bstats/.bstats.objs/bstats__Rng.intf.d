lib/bstats/rng.mli:
