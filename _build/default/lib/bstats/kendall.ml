(** Kendall's tau rank-correlation coefficient.

    The paper reports tau-b style correlation as "the fraction of pairwise
    throughput orderings preserved by a model"; we implement the standard
    tau-a/tau-b coefficients over prediction/measurement pairs. *)

(* O(n^2) reference implementation; n is at most a few thousand blocks
   per (application, model) cell, which is instantaneous. *)
let tau (pairs : (float * float) list) =
  let a = Array.of_list pairs in
  let n = Array.length a in
  if n < 2 then nan
  else begin
    let concordant = ref 0 and discordant = ref 0 in
    let ties_x = ref 0 and ties_y = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let xi, yi = a.(i) and xj, yj = a.(j) in
        let sx = compare xi xj and sy = compare yi yj in
        if sx = 0 && sy = 0 then begin
          incr ties_x;
          incr ties_y
        end
        else if sx = 0 then incr ties_x
        else if sy = 0 then incr ties_y
        else if sx * sy > 0 then incr concordant
        else incr discordant
      done
    done;
    let c = float_of_int !concordant and d = float_of_int !discordant in
    let tx = float_of_int !ties_x and ty = float_of_int !ties_y in
    let denom = sqrt ((c +. d +. tx) *. (c +. d +. ty)) in
    if denom = 0.0 then nan else (c -. d) /. denom
  end

(* Fraction of strictly-ordered pairs whose order the prediction
   preserves; a more direct reading of the paper's description. *)
let pairwise_agreement (pairs : (float * float) list) =
  let a = Array.of_list pairs in
  let n = Array.length a in
  if n < 2 then nan
  else begin
    let agree = ref 0 and total = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let xi, yi = a.(i) and xj, yj = a.(j) in
        let sy = compare yi yj in
        if sy <> 0 then begin
          incr total;
          if compare xi xj = sy then incr agree
        end
      done
    done;
    if !total = 0 then nan else float_of_int !agree /. float_of_int !total
  end
