(** Prediction-error metrics used throughout the evaluation. *)

(* Relative error: |predicted - measured| / measured (the paper's
   inaccuracy metric). *)
let relative ~predicted ~measured =
  if measured = 0.0 then invalid_arg "Error.relative: zero measured value";
  Float.abs (predicted -. measured) /. measured

let average xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Unweighted average relative error over (predicted, measured) pairs. *)
let average_relative pairs =
  average (List.map (fun (p, m) -> relative ~predicted:p ~measured:m) pairs)

(* Weighted average error: each pair carries a weight (the paper weights
   by runtime execution frequency). *)
let weighted_relative triples =
  let num, den =
    List.fold_left
      (fun (num, den) (p, m, w) -> (num +. (w *. relative ~predicted:p ~measured:m), den +. w))
      (0.0, 0.0) triples
  in
  if den = 0.0 then nan else num /. den

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
    (a +. b) /. 2.0

let percentile q xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    let idx = int_of_float (q *. float_of_int (n - 1)) in
    List.nth sorted (max 0 (min (n - 1) idx))
