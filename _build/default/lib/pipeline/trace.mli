(** Dynamic instruction trace: the bridge between architectural
    execution (addresses, faults, data-dependent events) and the timing
    simulation that replays it against pipeline resources. *)

type dyn_inst = {
  inst : X86.Inst.t;
  static_index : int;  (** index within the (unrolled) static stream *)
  code_addr : int;  (** byte offset of the instruction in the code stream *)
  code_len : int;
  decomp : Uarch.Uop.decomp;
  reads : int list;  (** dependence-root indices read *)
  writes : int list;
  reads_flags : bool;
  writes_flags : bool;
  loads : (int64 * int) array;  (** physical address and size per load *)
  stores : (int64 * int) array;
  load_vaddrs : int64 array;  (** virtual addresses (for split detection) *)
  store_vaddrs : int64 array;
  div_slow : bool;  (** division took the wide-dividend path *)
  subnormal : bool;  (** FP op touched subnormals (gradual underflow) *)
}

(** Build the dynamic trace of a completed execution under
    microarchitecture [d]; instructions are laid out consecutively, as
    the unrolled benchmark body is. *)
val of_steps : Uarch.Descriptor.t -> Xsem.Executor.step list -> dyn_inst list

val total_uops : dyn_inst list -> int
