(** Hardware performance counters, as read by the measurement framework.

    These mirror the events BHive monitors: core cycles, the three L1
    miss counters, MISALIGNED_MEM_REFERENCE, and the OS context-switch
    count (the latter is a software counter on real systems). *)

type t = {
  mutable core_cycles : int;
  mutable instructions : int;
  mutable uops : int;
  mutable l1d_read_misses : int;
  mutable l1d_write_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable misaligned_mem_refs : int;
  mutable context_switches : int;
  mutable subnormal_assists : int;
}

let create () =
  {
    core_cycles = 0;
    instructions = 0;
    uops = 0;
    l1d_read_misses = 0;
    l1d_write_misses = 0;
    l1i_misses = 0;
    l2_misses = 0;
    misaligned_mem_refs = 0;
    context_switches = 0;
    subnormal_assists = 0;
  }

let copy t = { t with core_cycles = t.core_cycles }

(* Counter delta, as computed from the begin/end reads in the paper's
   measure() routine. *)
let diff ~begin_ ~end_ =
  {
    core_cycles = end_.core_cycles - begin_.core_cycles;
    instructions = end_.instructions - begin_.instructions;
    uops = end_.uops - begin_.uops;
    l1d_read_misses = end_.l1d_read_misses - begin_.l1d_read_misses;
    l1d_write_misses = end_.l1d_write_misses - begin_.l1d_write_misses;
    l1i_misses = end_.l1i_misses - begin_.l1i_misses;
    l2_misses = end_.l2_misses - begin_.l2_misses;
    misaligned_mem_refs = end_.misaligned_mem_refs - begin_.misaligned_mem_refs;
    context_switches = end_.context_switches - begin_.context_switches;
    subnormal_assists = end_.subnormal_assists - begin_.subnormal_assists;
  }

(* A "clean" measurement in the BHive sense: no cache misses of any kind
   and no context switches. *)
let is_clean t =
  t.l1d_read_misses = 0 && t.l1d_write_misses = 0 && t.l1i_misses = 0
  && t.context_switches = 0

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d insts=%d uops=%d l1d_rd_miss=%d l1d_wr_miss=%d l1i_miss=%d \
     l2_miss=%d misaligned=%d ctx_switches=%d assists=%d"
    t.core_cycles t.instructions t.uops t.l1d_read_misses t.l1d_write_misses
    t.l1i_misses t.l2_misses t.misaligned_mem_refs t.context_switches
    t.subnormal_assists
