(** Hardware performance counters as read by the measurement framework,
    mirroring the events BHive monitors: core cycles, the cache-miss
    counters, MISALIGNED_MEM_REFERENCE, and the OS context-switch count. *)

type t = {
  mutable core_cycles : int;
  mutable instructions : int;
  mutable uops : int;
  mutable l1d_read_misses : int;
  mutable l1d_write_misses : int;
  mutable l1i_misses : int;
  mutable l2_misses : int;
  mutable misaligned_mem_refs : int;
  mutable context_switches : int;
  mutable subnormal_assists : int;
}

val create : unit -> t
val copy : t -> t

(** Counter delta, as computed from the begin/end reads in the paper's
    measure() routine. *)
val diff : begin_:t -> end_:t -> t

(** A "clean" measurement in the BHive sense: no cache misses of any
    kind and no context switches. (L2 misses imply L1 misses, so they
    need no separate clause.) *)
val is_clean : t -> bool

val pp : Format.formatter -> t -> unit
