lib/pipeline/trace.mli: Uarch X86 Xsem
