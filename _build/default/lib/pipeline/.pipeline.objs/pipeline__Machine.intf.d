lib/pipeline/machine.mli: Core Memsim Uarch Xsem
