lib/pipeline/core.ml: Array Counters Descriptor Hashtbl Int64 List Memsim Port Port_schedule Queue Trace Uarch Uop X86
