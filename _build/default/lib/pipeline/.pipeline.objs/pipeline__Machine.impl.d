lib/pipeline/machine.ml: Core Memsim Trace Uarch Xsem
