lib/pipeline/counters.ml: Format
