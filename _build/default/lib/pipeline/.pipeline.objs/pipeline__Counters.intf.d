lib/pipeline/counters.mli: Format
