lib/pipeline/trace.ml: Array Encoder Inst List Memsim Opcode Reg Uarch X86 Xsem
