(** Dynamic instruction trace: the bridge between architectural execution
    (which determines addresses, faults and data-dependent events) and the
    timing simulation (which replays the trace against pipeline
    resources). *)

open X86

type dyn_inst = {
  inst : Inst.t;
  static_index : int;  (** index within the (unrolled) static stream *)
  code_addr : int;  (** byte offset of the instruction in the code stream *)
  code_len : int;
  decomp : Uarch.Uop.decomp;
  reads : int list;  (** dependence-root indices read (registers) *)
  writes : int list;
  reads_flags : bool;
  writes_flags : bool;
  loads : (int64 * int) array;  (** physical address and size per load *)
  stores : (int64 * int) array;
  load_vaddrs : int64 array;  (** virtual addresses (for split detection) *)
  store_vaddrs : int64 array;
  div_slow : bool;  (** division executed the wide-dividend path *)
  subnormal : bool;  (** FP op touched subnormals (gradual underflow) *)
}

(** Build the dynamic trace for a completed execution of [steps] under
    microarchitecture [d]. [code_addrs] gives the byte offset/length of
    each static instruction; steps beyond the first unrolled copy reuse
    them cyclically. *)
let of_steps (d : Uarch.Descriptor.t) (steps : Xsem.Executor.step list) :
    dyn_inst list =
  (* Byte offsets for the full dynamic stream: instructions are laid out
     consecutively, as the unrolled benchmark body is. *)
  let offset = ref 0 in
  List.map
    (fun (s : Xsem.Executor.step) ->
      let inst = s.inst in
      let len = Encoder.encoded_length inst in
      let addr = !offset in
      offset := !offset + len;
      let decomp = Uarch.Descriptor.decompose d inst in
      let loads, stores =
        List.partition (fun (a : Memsim.Mmu.access) -> not a.is_store) s.accesses
      in
      let reads = List.map Reg.root_index (Inst.read_roots inst) in
      let writes = List.map Reg.root_index (Inst.write_roots inst) in
      {
        inst;
        static_index = s.index;
        code_addr = addr;
        code_len = len;
        decomp;
        reads;
        writes;
        reads_flags = Opcode.reads_flags inst.opcode;
        writes_flags = Opcode.writes_flags inst.opcode;
        loads = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> (a.paddr, a.size)) loads);
        stores = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> (a.paddr, a.size)) stores);
        load_vaddrs = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> a.vaddr) loads);
        store_vaddrs = Array.of_list (List.map (fun (a : Memsim.Mmu.access) -> a.vaddr) stores);
        div_slow = List.mem Xsem.Semantics.Div_slow_path s.events;
        subnormal = List.mem Xsem.Semantics.Subnormal s.events;
      })
    steps

let total_uops trace =
  List.fold_left (fun acc di -> acc + Uarch.Uop.total_uops di.decomp) 0 trace
