(** A simulated machine: one microarchitecture core plus its private L1
    caches. Cache contents persist across [run] calls until [reset],
    mirroring warm-up behaviour on real hardware. *)

type t = {
  descriptor : Uarch.Descriptor.t;
  l1d : Memsim.Cache.t;
  l1i : Memsim.Cache.t;
  l2 : Memsim.Cache.t;  (** unified second level *)
}

let create (descriptor : Uarch.Descriptor.t) =
  {
    descriptor;
    l1d = Memsim.Cache.l1_default ();
    l1i = Memsim.Cache.l1_default ();
    l2 = Memsim.Cache.create ~size_bytes:(256 * 1024) ~ways:8 ~line_bytes:64;
  }

let reset t =
  Memsim.Cache.flush t.l1d;
  Memsim.Cache.flush t.l1i;
  Memsim.Cache.flush t.l2

(* Simulate the timing of one completed architectural execution. *)
let run ?record_schedule t (steps : Xsem.Executor.step list) : Core.result =
  let trace = Trace.of_steps t.descriptor steps in
  Core.simulate ?record_schedule t.descriptor ~l1d:t.l1d ~l1i:t.l1i ~l2:t.l2 trace
