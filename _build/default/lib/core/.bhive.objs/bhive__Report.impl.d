lib/core/report.ml: Ablation Array Bstats Classify Corpus Float Format List Models Printf String Validation X86
