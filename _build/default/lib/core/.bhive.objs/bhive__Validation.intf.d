lib/core/validation.mli: Classify Dataset Models Uarch
