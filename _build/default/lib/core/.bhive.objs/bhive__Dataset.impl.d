lib/core/dataset.ml: Bstats Corpus Harness Int64 List Option Uarch
