lib/core/dataset.mli: Corpus Harness Uarch
