lib/core/export.ml: Buffer Corpus Dataset In_channel List Out_channel Printf String X86
