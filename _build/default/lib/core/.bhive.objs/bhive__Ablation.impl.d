lib/core/ablation.ml: Corpus Harness List Printf Uarch X86
