lib/core/validation.ml: Bstats Classify Corpus Dataset Float Hashtbl List Models Option Printf Uarch
