(** Ablation experiments (Tables I and II of the paper).

    Table I measures what fraction of the suite each incremental
    measurement technique can successfully profile; Table II follows a
    single large TensorFlow block through the same progression of
    configurations, reporting the measured value and miss counters at
    each step. *)

type suite_row = {
  technique : string;
  profiled_percent : float;
  n_profiled : int;
  n_total : int;
}

let technique_envs =
  [
    ("None", Harness.Environment.agner_baseline);
    ("Mapping all accessed pages", Harness.Environment.with_page_mapping);
    ("More intelligent unrolling", Harness.Environment.default);
  ]

(* Table I: percentage of the suite profiled under each incremental
   technique. *)
let suite_ablation ?(uarch = Uarch.All.haswell) (blocks : Corpus.Block.t list) :
    suite_row list =
  List.map
    (fun (technique, env) ->
      let ok =
        List.fold_left
          (fun acc (b : Corpus.Block.t) ->
            match Harness.Profiler.profile env uarch b.insts with
            | Ok p when p.accepted -> acc + 1
            | _ -> acc)
          0 blocks
      in
      let n = List.length blocks in
      {
        technique;
        profiled_percent = 100.0 *. float_of_int ok /. float_of_int n;
        n_profiled = ok;
        n_total = n;
      })
    technique_envs

type block_row = {
  optimization : string;
  measured : string;  (** throughput or "Crashed" *)
  l1d_misses : string;
  l1i_misses : string;
}

(* Table II: one block through the five incremental configurations. *)
let block_ablation ?(uarch = Uarch.All.haswell) (block : X86.Inst.t list) :
    block_row list =
  let configs =
    [
      ("None", Harness.Environment.agner_baseline);
      ( "Page mapping",
        {
          Harness.Environment.default with
          mapping = Harness.Environment.Fresh_pages;
          unroll = Harness.Environment.Naive 100;
          disable_underflow = false;
          drop_misaligned = false;
        } );
      ( "Single physical page",
        {
          Harness.Environment.default with
          unroll = Harness.Environment.Naive 100;
          disable_underflow = false;
          drop_misaligned = false;
        } );
      ( "Disabling gradual underflow",
        {
          Harness.Environment.default with
          unroll = Harness.Environment.Naive 100;
          drop_misaligned = false;
        } );
      ("Using smaller unroll factor", Harness.Environment.default);
    ]
  in
  List.map
    (fun (optimization, env) ->
      match Harness.Profiler.profile env uarch block with
      | Error _ ->
        { optimization; measured = "Crashed"; l1d_misses = "N/A"; l1i_misses = "N/A" }
      | Ok p ->
        let c = p.large.counters in
        {
          optimization;
          measured = Printf.sprintf "%.1f" p.throughput;
          l1d_misses = string_of_int (c.l1d_read_misses + c.l1d_write_misses);
          l1i_misses = string_of_int c.l1i_misses;
        })
    configs
