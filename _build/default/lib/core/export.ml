(** Dataset serialisation.

    The published BHive artifact distributes its measurements as CSV
    (block hex, measured throughput); this module provides the same
    interchange role: measured datasets round-trip through a CSV whose
    block column is the assembly text, so external tools (or a later
    session training a model) can consume the ground truth without
    rerunning the profiler. *)

(* One line per block: id, app, freq, unroll factors, throughput, and
   the block text with newlines escaped as ';'. *)
let block_field (b : Corpus.Block.t) =
  String.concat "; " (List.map X86.Inst.to_string b.insts)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let header = "id,app,freq,unroll_large,unroll_small,throughput,block"

let entry_to_csv (e : Dataset.entry) =
  Printf.sprintf "%s,%s,%d,%d,%d,%.6f,%s"
    (csv_escape e.block.id) (csv_escape e.block.app) e.block.freq
    e.unroll_large e.unroll_small e.throughput
    (csv_escape (block_field e.block))

let to_channel oc (t : Dataset.t) =
  output_string oc header;
  output_char oc '\n';
  List.iter
    (fun e ->
      output_string oc (entry_to_csv e);
      output_char oc '\n')
    t.entries

let to_file path (t : Dataset.t) =
  Out_channel.with_open_text path (fun oc -> to_channel oc t)

let to_string (t : Dataset.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_csv e);
      Buffer.add_char buf '\n')
    t.entries;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

(* Split one CSV line honouring double-quoted fields. *)
let split_csv_line line =
  let fields = ref [] and buf = Buffer.create 32 in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then fields := Buffer.contents buf :: !fields
    else
      match line.[i] with
      | '"' when in_quotes && i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        go (i + 2) true
      | '"' -> go (i + 1) (not in_quotes)
      | ',' when not in_quotes ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      | c ->
        Buffer.add_char buf c;
        go (i + 1) in_quotes
  in
  go 0 false;
  List.rev !fields

(** A parsed dataset row, independent of any profiler state. *)
type row = {
  block : Corpus.Block.t;
  throughput : float;
  unroll_large : int;
  unroll_small : int;
}

let row_of_line line : row =
  match split_csv_line line with
  | [ id; app; freq; ul; us; tp; text ] -> (
    let fail what = raise (Parse_error (Printf.sprintf "%s in %S" what line)) in
    let freq = match int_of_string_opt freq with Some v -> v | None -> fail "freq" in
    let ul = match int_of_string_opt ul with Some v -> v | None -> fail "unroll" in
    let us = match int_of_string_opt us with Some v -> v | None -> fail "unroll" in
    let tp = match float_of_string_opt tp with Some v -> v | None -> fail "throughput" in
    match X86.Parser.block (String.concat "\n" (String.split_on_char ';' text)) with
    | Ok insts ->
      {
        block = Corpus.Block.make ~id ~app ~freq insts;
        throughput = tp;
        unroll_large = ul;
        unroll_small = us;
      }
    | Error e -> raise (Parse_error (Printf.sprintf "block %S: %s" text e)))
  | _ -> raise (Parse_error (Printf.sprintf "bad field count in %S" line))

let of_string (s : string) : row list =
  match String.split_on_char '\n' s with
  | [] -> []
  | hd :: rows when String.trim hd = header ->
    List.filter_map
      (fun line -> if String.trim line = "" then None else Some (row_of_line line))
      rows
  | _ -> raise (Parse_error "missing header")

let of_file path = of_string (In_channel.with_open_text path In_channel.input_all)

(* Rows as a (block, throughput) training set for the learned model. *)
let training_pairs rows =
  List.map (fun r -> (r.block.Corpus.Block.insts, r.throughput)) rows
