lib/classify/categories.mli: Corpus Features Hashtbl Lda Uarch
