lib/classify/composition.ml: Categories Corpus Format Hashtbl List Option
