lib/classify/features.ml: Array Corpus Hashtbl List Uarch
