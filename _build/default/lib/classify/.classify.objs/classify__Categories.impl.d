lib/classify/categories.ml: Array Corpus Features Float Hashtbl Lda List Option Printf Uarch X86
