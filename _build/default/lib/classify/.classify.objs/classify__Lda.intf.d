lib/classify/lda.mli:
