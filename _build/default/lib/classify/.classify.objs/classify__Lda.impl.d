lib/classify/lda.ml: Array Bstats
