(** Featurisation for classification: each basic block becomes the bag of
    port combinations of its micro-ops (Abel-Reineke notation), following
    the paper's use of the instruction-to-port mapping as the LDA
    vocabulary. Haswell's mapping is used, as in the paper. *)

(* Port-combination tokens of one block. *)
let tokens ?(descriptor = Uarch.Haswell.descriptor) (block : Corpus.Block.t) :
    Uarch.Port.set list =
  List.concat_map
    (fun inst ->
      let d = Uarch.Descriptor.decompose descriptor inst in
      if d.eliminated then
        (* eliminated uops still reflect the instruction's character:
           tokenise the nominal ALU combination *)
        [ descriptor.profile.alu ]
      else List.map (fun (u : Uarch.Uop.t) -> u.ports) d.uops)
    block.insts

(** Vocabulary: the distinct port combinations occurring in a corpus. *)
type vocab = {
  combos : Uarch.Port.set array;
  index : (Uarch.Port.set, int) Hashtbl.t;
}

let build_vocab ?descriptor (blocks : Corpus.Block.t list) : vocab =
  let index = Hashtbl.create 32 in
  let combos = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem index c) then begin
            Hashtbl.add index c (Hashtbl.length index);
            combos := c :: !combos
          end)
        (tokens ?descriptor b))
    blocks;
  { combos = Array.of_list (List.rev !combos); index }

let vocab_size v = Array.length v.combos

(* Documents as vocab-index arrays, aligned with the input block list. *)
let documents ?descriptor (v : vocab) (blocks : Corpus.Block.t list) :
    int array array =
  List.map
    (fun b ->
      tokens ?descriptor b
      |> List.filter_map (fun c -> Hashtbl.find_opt v.index c)
      |> Array.of_list)
    blocks
  |> Array.of_list
