(** Per-application category composition (Figures "apps-vs-clusters" and
    "google-blocks"). *)

type row = {
  app : string;
  total : float;
  per_category : (Categories.label * float) list;  (** percentages *)
}

(* Composition of each application; when [weighted] each block counts
   with its dynamic execution frequency (the Google case-study figure
   weights by runtime frequency). *)
let rows ?(weighted = false) (t : Categories.t) (blocks : Corpus.Block.t list) :
    row list =
  let apps = Hashtbl.create 16 in
  List.iter
    (fun (b : Corpus.Block.t) ->
      let weight = if weighted then float_of_int b.freq else 1.0 in
      let l = Categories.classify t b in
      let per =
        match Hashtbl.find_opt apps b.app with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace apps b.app tbl;
          tbl
      in
      Hashtbl.replace per l (weight +. Option.value ~default:0.0 (Hashtbl.find_opt per l)))
    blocks;
  Hashtbl.fold
    (fun app per acc ->
      let total = Hashtbl.fold (fun _ w t -> t +. w) per 0.0 in
      let per_category =
        List.map
          (fun l ->
            let w = Option.value ~default:0.0 (Hashtbl.find_opt per l) in
            (l, if total > 0.0 then 100.0 *. w /. total else 0.0))
          Categories.all_labels
      in
      { app; total; per_category } :: acc)
    apps []
  |> List.sort (fun a b -> compare a.app b.app)

let pp_row fmt (r : row) =
  Format.fprintf fmt "%-12s" r.app;
  List.iter
    (fun (_, pct) -> Format.fprintf fmt " %6.2f%%" pct)
    r.per_category
