(** Latent Dirichlet Allocation by collapsed Gibbs sampling, matching
    the paper's configuration (6 topics, alpha = 1/6, beta = 1/13). *)

type config = {
  topics : int;
  alpha : float;
  beta : float;
  iterations : int;
  seed : int64;
}

val default_config : config

type model = {
  config : config;
  vocab_size : int;
  doc_topic : int array array;  (** per-document topic counts *)
  topic_word : int array array;  (** per-topic vocabulary counts *)
  topic_total : int array;
  assignments : int array array;  (** topic of every token *)
}

(** Fit on documents given as vocabulary-index arrays; deterministic in
    the config seed. *)
val fit : ?config:config -> vocab_size:int -> int array array -> model

(** Smoothed topic-word probability phi_k(w); sums to 1 over the
    vocabulary for each topic. *)
val phi : model -> int -> int -> float

(** Dominant topic of a fitted document (the paper's block category =
    most common category among its micro-ops). *)
val doc_category : model -> int -> int

(** Fold-in inference for an unseen document. *)
val infer : model -> int array -> int
