(** Latent Dirichlet Allocation by collapsed Gibbs sampling.

    The paper fits a 6-topic model with alpha = 1/6 and beta = 1/13 over
    micro-op port-combination tokens (SciKit-Learn's variational
    implementation); collapsed Gibbs sampling fits the same generative
    model and is fully deterministic here given the seed. *)

type config = {
  topics : int;
  alpha : float;
  beta : float;
  iterations : int;
  seed : int64;
}

let default_config =
  { topics = 6; alpha = 1.0 /. 6.0; beta = 1.0 /. 13.0; iterations = 200; seed = 6L }

type model = {
  config : config;
  vocab_size : int;
  doc_topic : int array array;  (** n_dk counts *)
  topic_word : int array array;  (** n_kw counts *)
  topic_total : int array;
  assignments : int array array;  (** topic of each token *)
}

let fit ?(config = default_config) ~vocab_size (docs : int array array) : model =
  let k = config.topics in
  let rng = Bstats.Rng.create config.seed in
  let n_docs = Array.length docs in
  let doc_topic = Array.init n_docs (fun _ -> Array.make k 0) in
  let topic_word = Array.init k (fun _ -> Array.make vocab_size 0) in
  let topic_total = Array.make k 0 in
  let assignments = Array.map (fun doc -> Array.make (Array.length doc) 0) docs in
  (* random initial assignment *)
  Array.iteri
    (fun d doc ->
      Array.iteri
        (fun i w ->
          let z = Bstats.Rng.int rng k in
          assignments.(d).(i) <- z;
          doc_topic.(d).(z) <- doc_topic.(d).(z) + 1;
          topic_word.(z).(w) <- topic_word.(z).(w) + 1;
          topic_total.(z) <- topic_total.(z) + 1)
        doc)
    docs;
  let probs = Array.make k 0.0 in
  let v_beta = float_of_int vocab_size *. config.beta in
  for _ = 1 to config.iterations do
    Array.iteri
      (fun d doc ->
        Array.iteri
          (fun i w ->
            let z = assignments.(d).(i) in
            (* remove token *)
            doc_topic.(d).(z) <- doc_topic.(d).(z) - 1;
            topic_word.(z).(w) <- topic_word.(z).(w) - 1;
            topic_total.(z) <- topic_total.(z) - 1;
            (* full conditional *)
            let total = ref 0.0 in
            for t = 0 to k - 1 do
              let p =
                (float_of_int doc_topic.(d).(t) +. config.alpha)
                *. (float_of_int topic_word.(t).(w) +. config.beta)
                /. (float_of_int topic_total.(t) +. v_beta)
              in
              probs.(t) <- p;
              total := !total +. p
            done;
            let target = Bstats.Rng.float rng *. !total in
            let rec pick t acc =
              if t >= k - 1 then k - 1
              else if acc +. probs.(t) >= target then t
              else pick (t + 1) (acc +. probs.(t))
            in
            let z' = pick 0 0.0 in
            assignments.(d).(i) <- z';
            doc_topic.(d).(z') <- doc_topic.(d).(z') + 1;
            topic_word.(z').(w) <- topic_word.(z').(w) + 1;
            topic_total.(z') <- topic_total.(z') + 1)
          doc)
      docs
  done;
  { config; vocab_size; doc_topic; topic_word; topic_total; assignments }

(* Topic-word distribution phi_k(w). *)
let phi model k w =
  (float_of_int model.topic_word.(k).(w) +. model.config.beta)
  /. (float_of_int model.topic_total.(k)
     +. (float_of_int model.vocab_size *. model.config.beta))

(* Dominant topic of a document: the paper defines a block's category as
   the most common category among its micro-ops. *)
let doc_category model d =
  let counts = model.doc_topic.(d) in
  let best = ref 0 in
  Array.iteri (fun k c -> if c > counts.(!best) then best := k) counts;
  !best

(* Infer the dominant topic of an unseen document (fold-in by one-shot
   assignment against the trained topic-word counts). *)
let infer model (doc : int array) =
  let k = model.config.topics in
  let counts = Array.make k 0.0 in
  Array.iter
    (fun w ->
      if w < model.vocab_size then begin
        (* assign token to its most likely topic under phi *)
        let best = ref 0 in
        for t = 1 to k - 1 do
          if phi model t w > phi model !best w then best := t
        done;
        counts.(!best) <- counts.(!best) +. 1.0
      end)
    doc;
  let best = ref 0 in
  Array.iteri (fun t c -> if c > counts.(!best) then best := t) counts;
  !best
