(** Category labelling and block classification.

    LDA does not name its topics; the paper labels them by manual
    inspection. Here labelling is automated: each topic's port-usage
    profile is scored against the six descriptions of the paper's Table
    "categories" and topics are assigned labels greedily (best fit
    first). *)

type label =
  | Scalar_vector_mix  (** Category-1: mix of scalar and vectorised arithmetic *)
  | Pure_vector  (** Category-2: purely vector instructions *)
  | Load_store_mix  (** Category-3: mix of loads and stores *)
  | Mostly_stores  (** Category-4 *)
  | Alu_with_memory  (** Category-5: ALU ops sprinkled with loads and stores *)
  | Mostly_loads  (** Category-6 *)

let all_labels =
  [ Scalar_vector_mix; Pure_vector; Load_store_mix; Mostly_stores;
    Alu_with_memory; Mostly_loads ]

let label_number = function
  | Scalar_vector_mix -> 1
  | Pure_vector -> 2
  | Load_store_mix -> 3
  | Mostly_stores -> 4
  | Alu_with_memory -> 5
  | Mostly_loads -> 6

let label_name l = Printf.sprintf "Category-%d" (label_number l)

let label_description = function
  | Scalar_vector_mix -> "Mix of scalar and vectorized arithmetic"
  | Pure_vector -> "Purely vector instructions"
  | Load_store_mix -> "Mix of loads and stores"
  | Mostly_stores -> "Mostly stores"
  | Alu_with_memory -> "ALU ops sprinkled with loads and stores"
  | Mostly_loads -> "Mostly loads"

(* Aggregate port-usage shares of a topic under the given uarch. *)
type shares = {
  load : float;
  store : float;
  scalar : float;
  vector : float;
}

(* Micro-op-level resource shares of one block, from the instruction
   stream itself. This is the information the paper's authors used when
   manually inspecting and naming each LDA cluster: port combinations
   alone cannot separate scalar multiplies from FP arithmetic (both issue
   to p1/p01 on Haswell). *)
let block_shares (descriptor : Uarch.Descriptor.t) (b : Corpus.Block.t) : shares =
  let load = ref 0.0 and store = ref 0.0 and scalar = ref 0.0 and vector = ref 0.0 in
  List.iter
    (fun (inst : X86.Inst.t) ->
      let d = Uarch.Descriptor.decompose descriptor inst in
      let exec_bucket = if X86.Opcode.is_vector inst.opcode then vector else scalar in
      if d.eliminated then exec_bucket := !exec_bucket +. 1.0
      else
        List.iter
          (fun (u : Uarch.Uop.t) ->
            match u.kind with
            | Uarch.Uop.Load -> load := !load +. 1.0
            | Uarch.Uop.Store_addr | Uarch.Uop.Store_data -> store := !store +. 0.5
            | Uarch.Uop.Exec -> exec_bucket := !exec_bucket +. 1.0)
          d.uops)
    b.insts;
  let total = !load +. !store +. !scalar +. !vector in
  let n x = if total > 0.0 then x /. total else 0.0 in
  { load = n !load; store = n !store; scalar = n !scalar; vector = n !vector }

(* Average resource shares of the blocks assigned to topic [k]. *)
let shares_of_topic (descriptor : Uarch.Descriptor.t)
    (blocks : Corpus.Block.t array) (assignment : int array) k : shares =
  let acc = ref { load = 0.0; store = 0.0; scalar = 0.0; vector = 0.0 } in
  let count = ref 0 in
  Array.iteri
    (fun d topic ->
      if topic = k then begin
        let s = block_shares descriptor blocks.(d) in
        acc :=
          {
            load = !acc.load +. s.load;
            store = !acc.store +. s.store;
            scalar = !acc.scalar +. s.scalar;
            vector = !acc.vector +. s.vector;
          };
        incr count
      end)
    assignment;
  if !count = 0 then { load = 0.0; store = 0.0; scalar = 1.0; vector = 0.0 }
  else
    let n = float_of_int !count in
    { load = !acc.load /. n; store = !acc.store /. n;
      scalar = !acc.scalar /. n; vector = !acc.vector /. n }

(* Fit score of a topic profile for each label; higher is better. *)
let label_score (s : shares) = function
  | Mostly_loads -> s.load -. s.store -. (0.5 *. (s.scalar +. s.vector))
  | Mostly_stores -> s.store -. s.load -. (0.5 *. (s.scalar +. s.vector))
  | Load_store_mix ->
    Float.min s.load s.store +. (0.5 *. (s.load +. s.store)) -. s.scalar -. s.vector
  | Pure_vector -> s.vector -. (2.0 *. s.scalar) -. s.load -. s.store
  | Scalar_vector_mix ->
    Float.min s.vector s.scalar +. (0.5 *. s.vector) -. s.load -. s.store
  | Alu_with_memory ->
    s.scalar +. (0.3 *. Float.min s.scalar (s.load +. s.store)) -. s.vector

(* Greedy one-to-one assignment of labels to topics. *)
let label_topics ?(descriptor = Uarch.Haswell.descriptor)
    (blocks : Corpus.Block.t array) (assignment : int array)
    (model : Lda.model) : label array =
  let k = model.config.topics in
  let shares = Array.init k (shares_of_topic descriptor blocks assignment) in
  let topic_label = Array.make k None in
  (* Labels are claimed in a fixed priority order, each taking the
     best-fitting unlabelled topic — the deterministic counterpart of the
     paper's manual inspection. *)
  let claim label keyf =
    let best = ref None in
    for t = 0 to k - 1 do
      if topic_label.(t) = None then
        match !best with
        | Some b when keyf shares.(b) >= keyf shares.(t) -> ()
        | _ -> best := Some t
    done;
    match !best with
    | Some t -> topic_label.(t) <- Some label
    | None -> ()
  in
  claim Mostly_stores (fun s -> s.store);
  claim Mostly_loads (fun s -> s.load);
  claim Pure_vector (fun s -> s.vector);
  claim Scalar_vector_mix (fun s -> s.vector);
  claim Load_store_mix (fun s -> s.load +. s.store);
  claim Alu_with_memory (fun s -> s.scalar);
  ignore label_score;
  Array.map (function Some l -> l | None -> Alu_with_memory) topic_label

(** A fitted classifier: model + vocabulary + topic labels. *)
type t = {
  descriptor : Uarch.Descriptor.t;
  vocab : Features.vocab;
  model : Lda.model;
  labels : label array;
  block_labels : (string, label) Hashtbl.t;  (** by block id *)
}

let fit ?(descriptor = Uarch.Haswell.descriptor) ?config
    (blocks : Corpus.Block.t list) : t =
  let vocab = Features.build_vocab ~descriptor blocks in
  let docs = Features.documents ~descriptor vocab blocks in
  let model = Lda.fit ?config ~vocab_size:(Features.vocab_size vocab) docs in
  let block_arr = Array.of_list blocks in
  let assignment = Array.init (Array.length block_arr) (Lda.doc_category model) in
  let labels = label_topics ~descriptor block_arr assignment model in
  let block_labels = Hashtbl.create (List.length blocks) in
  List.iteri
    (fun d (b : Corpus.Block.t) ->
      Hashtbl.replace block_labels b.id labels.(assignment.(d)))
    blocks;
  { descriptor; vocab; model; labels; block_labels }

(* Category of a block seen during fitting, or inferred for new blocks. *)
let classify (t : t) (block : Corpus.Block.t) : label =
  match Hashtbl.find_opt t.block_labels block.id with
  | Some l -> l
  | None ->
    let doc =
      Features.tokens ~descriptor:t.descriptor block
      |> List.filter_map (fun c -> Hashtbl.find_opt t.vocab.index c)
      |> Array.of_list
    in
    t.labels.(Lda.infer t.model doc)

(* Count of blocks per category (Table "categories"). *)
let category_counts (t : t) (blocks : Corpus.Block.t list) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let l = classify t b in
      Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    blocks;
  List.map (fun l -> (l, Option.value ~default:0 (Hashtbl.find_opt counts l))) all_labels

(* A representative (exemplar) block per category: among the blocks of
   the category, prefer display-sized blocks whose own resource shares
   best fit the category description. *)
let exemplars (t : t) (blocks : Corpus.Block.t list) : (label * Corpus.Block.t) list =
  let best = Hashtbl.create 8 in
  List.iter
    (fun (b : Corpus.Block.t) ->
      let l = classify t b in
      let len = Corpus.Block.length b in
      let fit = label_score (block_shares t.descriptor b) l in
      let size_bonus =
        if len >= 3 && len <= 8 then 0.5 else if len <= 12 then 0.2 else 0.0
      in
      let score = fit +. size_bonus in
      match Hashtbl.find_opt best l with
      | Some (s, _) when s >= score -> ()
      | _ -> Hashtbl.replace best l (score, b))
    blocks;
  List.filter_map
    (fun l -> Option.map (fun (_, b) -> (l, b)) (Hashtbl.find_opt best l))
    all_labels
