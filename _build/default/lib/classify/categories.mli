(** Basic-block categories: LDA topics over micro-op port-combination
    tokens, automatically labelled against the six descriptions of the
    paper's category table. *)

type label =
  | Scalar_vector_mix  (** Category-1: mix of scalar and vectorised arithmetic *)
  | Pure_vector  (** Category-2: purely vector instructions *)
  | Load_store_mix  (** Category-3: mix of loads and stores *)
  | Mostly_stores  (** Category-4 *)
  | Alu_with_memory  (** Category-5: ALU ops sprinkled with loads and stores *)
  | Mostly_loads  (** Category-6 *)

val all_labels : label list
val label_number : label -> int
val label_name : label -> string
val label_description : label -> string

(** Micro-op resource shares used for topic labelling. *)
type shares = {
  load : float;
  store : float;
  scalar : float;
  vector : float;
}

val block_shares : Uarch.Descriptor.t -> Corpus.Block.t -> shares

val shares_of_topic :
  Uarch.Descriptor.t -> Corpus.Block.t array -> int array -> int -> shares

(** A fitted classifier. *)
type t = {
  descriptor : Uarch.Descriptor.t;
  vocab : Features.vocab;
  model : Lda.model;
  labels : label array;  (** per-topic labels *)
  block_labels : (string, label) Hashtbl.t;  (** by block id *)
}

(** Fit LDA (collapsed Gibbs; deterministic in the config seed) and label
    its topics. The default configuration is the paper's: 6 topics,
    alpha = 1/6, beta = 1/13. *)
val fit :
  ?descriptor:Uarch.Descriptor.t -> ?config:Lda.config -> Corpus.Block.t list -> t

(** Category of a block: most common micro-op topic for fitted blocks,
    fold-in inference for unseen ones. *)
val classify : t -> Corpus.Block.t -> label

(** Block count per category (the paper's category table). *)
val category_counts : t -> Corpus.Block.t list -> (label * int) list

(** A representative block per category (the examples figure). *)
val exemplars : t -> Corpus.Block.t list -> (label * Corpus.Block.t) list
