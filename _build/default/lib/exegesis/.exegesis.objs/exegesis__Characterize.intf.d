lib/exegesis/characterize.mli: Benchgen Format Uarch
