lib/exegesis/portmap.mli: Format Uarch X86
