lib/exegesis/benchgen.ml: Inst List Opcode Printf Reg Width X86
