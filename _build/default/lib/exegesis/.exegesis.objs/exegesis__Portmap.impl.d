lib/exegesis/portmap.ml: Format Harness Inst List Opcode Printf Reg Uarch X86
