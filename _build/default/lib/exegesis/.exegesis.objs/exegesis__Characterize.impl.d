lib/exegesis/characterize.ml: Benchgen Format Harness List Option Printf Uarch
