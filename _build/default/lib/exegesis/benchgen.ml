(** Micro-benchmark generation for single-instruction characterisation,
    in the style of llvm-exegesis (which the paper's background
    discusses as the per-instruction complement to whole-block
    validation).

    For an instruction form we synthesise two benchmarks:

    - a {b latency} benchmark: a serial chain where each instance
      depends on the previous one through its destination register;
    - a {b throughput} benchmark: several instances with disjoint
      registers, so only execution resources are shared.

    Memory forms use distinct aligned slots off a pointer register so
    that loads hit L1 and never alias. *)

open X86
open X86.Builder

(** An instruction form we can characterise: the opcode plus the shape
    of its operands. *)
type form = {
  opcode : Opcode.t;
  width : Width.t;
  shape : [ `RR | `RI | `R | `RM | `MR | `VV | `VVV | `VM | `VVI ];
}

let form_name f =
  Printf.sprintf "%s%s.%s"
    (Opcode.mnemonic f.opcode)
    (match f.width with Width.Q -> "" | w -> "." ^ Width.to_string w)
    (match f.shape with
    | `RR -> "rr"
    | `RI -> "ri"
    | `R -> "r"
    | `RM -> "rm"
    | `MR -> "mr"
    | `VV -> "vv"
    | `VVV -> "vvv"
    | `VM -> "vm"
    | `VVI -> "vvi")

(* Registers used for chains/parallel copies. The base pointer rbx is
   reserved for memory operands; rsp is never used. *)
let gpr_pool = Reg.[ rax; rcx; rdx; rsi; rdi; r8; r9; r10; r11 ]
let vec_pool = List.init 12 Reg.xmm
let base = Reg.rbx

let narrow w r = match r with Reg.Gpr (g, _) -> Reg.Gpr (g, w) | r -> r

(* One instance of the form with the given destination and source
   registers (src used only by register shapes) and memory slot. *)
let instantiate (f : form) ~dst ~src ~slot : Inst.t =
  let w = f.width in
  let dst_i = narrow w dst and src_i = narrow w src in
  let m = mb ~base ~disp:(64 * slot) () in
  match f.shape with
  | `RR -> Inst.make ~width:w f.opcode [ r dst_i; r src_i ]
  | `RI -> Inst.make ~width:w f.opcode [ r dst_i; i 7 ]
  | `R -> Inst.make ~width:w f.opcode [ r dst_i ]
  | `RM -> Inst.make ~width:w f.opcode [ r dst_i; m ]
  | `MR -> Inst.make ~width:w f.opcode [ m; r src_i ]
  | `VV -> Inst.make ~width:w f.opcode [ r dst; r src ]
  | `VVV -> Inst.make ~width:w f.opcode [ r dst; r src; r src ]
  | `VM -> Inst.make ~width:w f.opcode [ r dst; m ]
  | `VVI -> Inst.make ~width:w f.opcode [ r dst; r src; i 3 ]

let is_vector_shape (f : form) =
  match f.shape with `VV | `VVV | `VM | `VVI -> true | _ -> false

(* The chain register pool for this form. *)
let pool f = if is_vector_shape f then vec_pool else gpr_pool

(* Can this form be made into a serial chain? RMW forms chain through
   their destination; write-only forms chain when they also have a
   register source we can tie to the destination. Stores and write-only
   unary/load forms cannot be chained this way. *)
let chainable (f : form) =
  let reg = List.hd (pool f) in
  let inst = instantiate f ~dst:reg ~src:reg ~slot:0 in
  (* a same-register chain of a dependency-breaking idiom (xor r,r;
     sub r,r) measures elimination, not latency *)
  if Inst.is_zero_idiom inst then false
  else
    match Inst.operand_access inst with
    | X86.Inst.Read_write :: _ -> true
    | X86.Inst.Write :: _ -> (
      match f.shape with `RR | `VV | `VVV | `VVI -> true | _ -> false)
    | _ -> false

(** Latency benchmark: [n] chained instances through one register; the
    loop-carried recurrence of the unrolled block is then n * latency.
    Returns [None] for forms that cannot be chained (stores, write-only
    loads). *)
let latency_block (f : form) ~n : Inst.t list option =
  if not (chainable f) then None
  else
    let reg = List.hd (pool f) in
    Some (List.init n (fun _ -> instantiate f ~dst:reg ~src:reg ~slot:0))

(** Throughput benchmark: [copies] instances with disjoint destination
    registers all reading one shared source register, so no instance
    depends on another within or across iterations (beyond the RMW
    recurrence on its own destination, which the copy count is chosen to
    hide). *)
let default_copies (f : form) = List.length (pool f) - 1

let throughput_block (f : form) ~copies : Inst.t list =
  let pool = pool f in
  let shared_src = List.nth pool (List.length pool - 1) in
  List.init copies (fun k ->
      let dst = List.nth pool (k mod (List.length pool - 1)) in
      instantiate f ~dst ~src:shared_src ~slot:k)

(* The standard battery of forms used by the characterisation table. *)
let standard_forms : form list =
  let q = Width.Q and d = Width.D in
  [
    { opcode = Opcode.Add; width = q; shape = `RR };
    { opcode = Opcode.Add; width = q; shape = `RM };
    { opcode = Opcode.Add; width = q; shape = `MR };
    { opcode = Opcode.Sub; width = q; shape = `RR };
    { opcode = Opcode.And; width = q; shape = `RR };
    { opcode = Opcode.Xor; width = d; shape = `RR };
    { opcode = Opcode.Cmp; width = q; shape = `RR };
    { opcode = Opcode.Mov; width = q; shape = `RR };
    { opcode = Opcode.Mov; width = q; shape = `RM };
    { opcode = Opcode.Mov; width = q; shape = `MR };
    { opcode = Opcode.Imul_rr; width = q; shape = `RR };
    { opcode = Opcode.Popcnt; width = q; shape = `RR };
    { opcode = Opcode.Lzcnt; width = q; shape = `RR };
    { opcode = Opcode.Bswap; width = q; shape = `R };
    { opcode = Opcode.Shl; width = q; shape = `RI };
    { opcode = Opcode.Ror; width = q; shape = `RI };
    { opcode = Opcode.Neg; width = q; shape = `R };
    { opcode = Opcode.Lea; width = q; shape = `RM };
    { opcode = Opcode.Fadd Opcode.Ps; width = q; shape = `VV };
    { opcode = Opcode.Fmul Opcode.Ps; width = q; shape = `VV };
    { opcode = Opcode.Fadd Opcode.Sd; width = q; shape = `VV };
    { opcode = Opcode.Fdiv Opcode.Ss; width = q; shape = `VV };
    { opcode = Opcode.Fsqrt Opcode.Ps; width = q; shape = `VV };
    { opcode = Opcode.Pand; width = q; shape = `VV };
    { opcode = Opcode.Padd Opcode.I32; width = q; shape = `VV };
    { opcode = Opcode.Pmull Opcode.I32; width = q; shape = `VV };
    { opcode = Opcode.Pshufd; width = q; shape = `VVI };
    { opcode = Opcode.Movap Opcode.Ps; width = q; shape = `VV };
    { opcode = Opcode.Movap Opcode.Ps; width = q; shape = `VM };
    { opcode = Opcode.Vfmadd (231, Opcode.Ps); width = q; shape = `VVV };
  ]
