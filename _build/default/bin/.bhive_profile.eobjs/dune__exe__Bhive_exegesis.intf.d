bin/bhive_exegesis.mli:
