bin/bhive_corpus.ml: Arg Cmd Cmdliner Corpus List Printf Term
