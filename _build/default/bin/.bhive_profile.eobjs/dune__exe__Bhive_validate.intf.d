bin/bhive_validate.mli:
