bin/bhive_classify.mli:
