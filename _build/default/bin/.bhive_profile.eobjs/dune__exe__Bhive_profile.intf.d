bin/bhive_profile.mli:
