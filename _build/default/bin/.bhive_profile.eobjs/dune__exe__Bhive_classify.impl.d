bin/bhive_classify.ml: Arg Bhive Classify Cmd Cmdliner Corpus Format List Printf Term
