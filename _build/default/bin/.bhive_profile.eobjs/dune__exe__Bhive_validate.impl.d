bin/bhive_validate.ml: Arg Bhive Cmd Cmdliner Corpus Format Int64 List Printf Term Uarch
