bin/bhive_profile.ml: Arg Array Cmd Cmdliner Format Harness In_channel List Models Pipeline Printf Term Uarch X86
