bin/bhive_exegesis.ml: Arg Cmd Cmdliner Exegesis Format Printf Term Uarch
