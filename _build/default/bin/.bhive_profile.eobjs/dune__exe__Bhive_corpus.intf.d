bin/bhive_corpus.mli:
