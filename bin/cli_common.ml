(* Shared CLI plumbing: every executable in this directory is a thin
   wrapper that synthesizes a manifest and hands it to
   [Manifest.Runner]. This module owns the one copy of the shared
   flags — --jobs, --store, --faults, --max-retries, --quorum,
   --trace, --emit-manifest — and the exit-code policy, so the
   wrappers contain only their experiment-specific flags.

   [setup] also validates every engine-relevant environment variable
   up front: a malformed BHIVE_JOBS / BHIVE_FAULTS / BHIVE_STORE is a
   one-line error and exit 2, never a silent fallback. *)

open Cmdliner

let faults_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (Faultsim.parse s)),
      fun fmt c -> Format.pp_print_string fmt (Faultsim.to_string c) )

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection for the measurement substrate, as \
           a comma-separated spec: \
           $(b,crash=0.01,stall=0.005,corrupt=0.002,seed=42). Overrides \
           \\$BHIVE_FAULTS; $(b,none) disables injection.")

let max_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Retries after a job's first failed attempt before it is \
           quarantined (default 4).")

let quorum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quorum" ] ~docv:"N"
        ~doc:
          "Trials per measurement attempt; a result is accepted only when a \
           strict majority of trials agree, which outvotes corrupted \
           timings (default 1: no voting).")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent measurement store directory — the engine's disk cache \
           tier. Measured results are appended to it and warm runs are \
           served from it without re-profiling. Overrides \\$BHIVE_STORE.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Measurement worker domains (default \\$BHIVE_JOBS or the \
           machine's recommended domain count). Results are identical for \
           any value.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Stream a JSONL span trace of the run to PATH. Overrides \
           \\$BHIVE_TRACE.")

let emit_arg =
  Arg.(
    value & flag
    & info [ "emit-manifest" ]
        ~doc:
          "Print the manifest this invocation would execute (as canonical \
           JSON) and exit without running it. The output is a valid input \
           for $(b,bhive_run).")

type setup = { overrides : Manifest.Runner.overrides; emit : bool }

(* Evaluates before the command body runs: environment validation and
   trace installation happen exactly once per process. *)
let setup : setup Term.t =
  let apply faults max_retries quorum store jobs trace emit =
    (match Engine.validate_env () with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("bhive: " ^ msg);
      exit 2);
    (match trace with
    | Some path -> Telemetry.Trace.install_file path
    | None -> Telemetry.Trace.init_from_env ());
    {
      overrides =
        {
          Manifest.Runner.o_jobs = jobs;
          o_store = store;
          o_faults = faults;
          o_max_retries = max_retries;
          o_quorum = quorum;
        };
      emit;
    }
  in
  Term.(
    const apply $ faults_arg $ max_retries_arg $ quorum_arg $ store_arg
    $ jobs_arg $ trace_arg $ emit_arg)

(* Exit-code policy, shared by every wrapper and bhive_run itself:
   0 success, 1 lost jobs, 2 invalid manifest / environment / output
   paths, 3 interrupted (--max-sections stopped before the last
   section). *)
let run_spec ?fresh ?max_sections ?kill_after_jobs (s : setup) spec =
  if s.emit then begin
    print_string (Manifest.Spec.to_string spec);
    exit 0
  end;
  match
    Manifest.Runner.run ~overrides:s.overrides ?fresh ?max_sections
      ?kill_after_jobs spec
  with
  | exception Manifest.Runner.Killed ->
    prerr_endline "bhive: killed (--kill-after-jobs)";
    exit 3
  | Error msg ->
    prerr_endline ("bhive: " ^ msg);
    exit 2
  | Ok (o : Manifest.Runner.outcome) ->
    if o.lost <> 0 then begin
      Printf.eprintf "FATAL: %d job(s) lost\n" o.lost;
      exit 1
    end;
    if o.interrupted then exit 3;
    exit 0
