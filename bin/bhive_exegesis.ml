(* bhive_exegesis: per-instruction latency / reciprocal-throughput /
   micro-op characterisation via automatically generated micro-benchmarks
   run through the block profiler (the llvm-exegesis role from the
   paper's background section). A thin wrapper around a
   characterisation manifest. *)

open Cmdliner

let spec uarch ports =
  let sections =
    Manifest.Spec.section (Manifest.Spec.Instruction_table { uarch })
    ::
    (if ports then
       [ Manifest.Spec.section (Manifest.Spec.Port_mapping { uarch }) ]
     else [])
  in
  Manifest.Spec.make ~name:"exegesis" ~uarches:[ uarch ] ~sections ()

let run setup uarch ports = Cli_common.run_spec setup (spec uarch ports)

let cmd =
  let uarch =
    Arg.(value & opt string "hsw" & info [ "u"; "uarch" ] ~doc:"Microarchitecture: ivb, hsw or skl.")
  in
  let ports =
    Arg.(value & flag & info [ "p"; "ports" ] ~doc:"Also infer port mappings with blocker probes.")
  in
  Cmd.v
    (Cmd.info "bhive_exegesis" ~doc:"Measure per-instruction latency and throughput with generated micro-benchmarks")
    Term.(const run $ Cli_common.setup $ uarch $ ports)

let () = exit (Cmd.eval cmd)
