(* bhive_exegesis: per-instruction latency / reciprocal-throughput /
   micro-op characterisation via automatically generated micro-benchmarks
   run through the block profiler (the llvm-exegesis role from the
   paper's background section). *)

open Cmdliner

let uarch_conv =
  let parse s =
    match Uarch.All.by_short s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown microarchitecture %S (ivb/hsw/skl)" s))
  in
  Arg.conv (parse, fun fmt (d : Uarch.Descriptor.t) -> Format.pp_print_string fmt d.short)

let run () uarch ports jobs =
  let engine = Engine.create ?jobs () in
  Printf.printf "Instruction characterisation on %s:\n\n" uarch.Uarch.Descriptor.name;
  Exegesis.Characterize.pp_table Format.std_formatter
    (Exegesis.Characterize.table ~engine uarch);
  if ports then begin
    print_newline ();
    print_endline "Port-mapping inference (blocker probes):";
    Exegesis.Portmap.pp_survey Format.std_formatter
      (Exegesis.Portmap.survey ~engine uarch Exegesis.Portmap.standard_targets)
  end;
  let s = Engine.stats engine in
  if s.quarantined > 0 then
    Printf.printf "\n%d micro-benchmark(s) quarantined by the engine\n"
      s.quarantined

let cmd =
  let uarch =
    Arg.(value & opt uarch_conv Uarch.All.haswell & info [ "u"; "uarch" ] ~doc:"Microarchitecture: ivb, hsw or skl.")
  in
  let ports =
    Arg.(value & flag & info [ "p"; "ports" ] ~doc:"Also infer port mappings with blocker probes.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc:"Measurement worker domains for the engine (default \\$BHIVE_JOBS).")
  in
  Cmd.v
    (Cmd.info "bhive_exegesis" ~doc:"Measure per-instruction latency and throughput with generated micro-benchmarks")
    Term.(const run $ Cli_faults.setup $ uarch $ ports $ jobs)

let () =
  Telemetry.Trace.init_from_env ();
  exit (Cmd.eval cmd)
