(* bhive_profile: profile one basic block, given as assembly text, on a
   chosen microarchitecture — the command-line face of the measurement
   framework. A thin wrapper: the input and flags synthesize a
   one-section manifest (printable with --emit-manifest).

     echo 'xor edx, edx
           div ecx' | dune exec bin/bhive_profile.exe -- --uarch hsw -
     dune exec bin/bhive_profile.exe -- --uarch skl block.s *)

open Cmdliner

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> (
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg ->
      prerr_endline ("bhive: " ^ msg);
      exit 2)

let spec uarch naive_unroll keep_underflow keep_misaligned with_models
    schedule asm =
  Manifest.Spec.make ~name:"profile" ~uarches:[ uarch ]
    ~filters:
      {
        Manifest.Spec.default_filters with
        naive_unroll;
        keep_underflow;
        keep_misaligned;
      }
    ~sections:
      [
        Manifest.Spec.section
          (Manifest.Spec.Profile { asm; uarch; with_models; schedule });
      ]
    ()

let run setup uarch naive keep_underflow keep_misaligned with_models schedule
    file =
  let asm = read_input file in
  Cli_common.run_spec setup
    (spec uarch naive keep_underflow keep_misaligned with_models schedule asm)

let cmd =
  let uarch =
    Arg.(value & opt string "hsw" & info [ "u"; "uarch" ] ~doc:"Microarchitecture: ivb, hsw or skl.")
  in
  let naive =
    Arg.(value & opt (some int) None & info [ "naive-unroll" ] ~doc:"Use naive unrolling with the given factor instead of the two-point method.")
  in
  let keep_underflow =
    Arg.(value & flag & info [ "keep-gradual-underflow" ] ~doc:"Do not set FTZ/DAZ before measuring.")
  in
  let keep_misaligned =
    Arg.(value & flag & info [ "keep-misaligned" ] ~doc:"Do not reject blocks with cache-line-crossing accesses.")
  in
  let with_models =
    Arg.(value & flag & info [ "m"; "models" ] ~doc:"Also print the predictions of the cost models.")
  in
  let schedule =
    Arg.(value & flag & info [ "schedule" ] ~doc:"Dump the simulated core's execution schedule.")
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Assembly file ('-' for stdin). AT&T and Intel syntax accepted.")
  in
  Cmd.v
    (Cmd.info "bhive_profile" ~doc:"Measure the steady-state throughput of an x86-64 basic block")
    Term.(
      const run $ Cli_common.setup $ uarch $ naive $ keep_underflow
      $ keep_misaligned $ with_models $ schedule $ file)

let () = exit (Cmd.eval cmd)
