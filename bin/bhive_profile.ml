(* bhive_profile: profile one basic block, given as assembly text, on a
   chosen microarchitecture — the command-line face of the measurement
   framework.

     echo 'xor edx, edx
           div ecx' | dune exec bin/bhive_profile.exe -- --uarch hsw -
     dune exec bin/bhive_profile.exe -- --uarch skl block.s *)

open Cmdliner

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let uarch_conv =
  let parse s =
    match Uarch.All.by_short s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown microarchitecture %S (ivb/hsw/skl)" s))
  in
  Arg.conv (parse, fun fmt (d : Uarch.Descriptor.t) -> Format.pp_print_string fmt d.short)

let print_ground_truth_schedule uarch block =
  (* map, execute a few copies, and dump the simulated core's schedule *)
  match Harness.Mapping.run Harness.Environment.default block ~unroll:4 with
  | Error f ->
    Printf.printf "cannot map block: %s\n" (Harness.Mapping.failure_to_string f)
  | Ok mapped ->
    let machine = Pipeline.Machine.create uarch in
    ignore (Pipeline.Machine.run machine mapped.steps);
    let r = Pipeline.Machine.run ~record_schedule:true machine mapped.steps in
    let insts = Array.of_list block in
    Printf.printf "\nground-truth schedule (4 unrolled iterations, warm):\n";
    List.iter
      (fun (e : Pipeline.Core.schedule_entry) ->
        let n = Array.length insts in
        let name =
          if n > 0 then X86.Inst.to_string insts.(e.static_index mod n) else ""
        in
        if e.port < 0 then
          Printf.printf "  %4d..%-4d (eliminated)  %s\n" e.dispatch e.complete name
        else
          Printf.printf "  %4d..%-4d p%d %-7s %s\n" e.dispatch e.complete e.port
            (Uarch.Uop.kind_name e.uop.kind) name)
      r.schedule

let run () uarch naive_unroll keep_underflow keep_misaligned with_models schedule jobs file =
  let engine = Engine.create ?jobs () in
  let text = read_input file in
  match X86.Parser.block text with
  | Error e ->
    Printf.eprintf "parse error: %s\n" e;
    exit 1
  | Ok [] ->
    Printf.eprintf "empty block\n";
    exit 1
  | Ok block ->
    let env = Harness.Environment.default in
    let env =
      match naive_unroll with
      | Some u -> { env with unroll = Harness.Environment.Naive u }
      | None -> env
    in
    let env = { env with disable_underflow = not keep_underflow } in
    let env = { env with drop_misaligned = not keep_misaligned } in
    Printf.printf "block (%d instructions, %d bytes):\n" (List.length block)
      (X86.Encoder.block_length block);
    List.iter (fun i -> Printf.printf "    %s\n" (X86.Inst.to_string i)) block;
    (match Engine.profile engine env uarch block with
    | Ok p ->
      Printf.printf "\nmeasured inverse throughput on %s: %.2f cycles/iteration\n"
        uarch.Uarch.Descriptor.name p.throughput;
      Printf.printf "accepted: %b%s\n" p.accepted
        (match p.reject with
        | Some Harness.Profiler.Misaligned_access -> " (misaligned access)"
        | Some Harness.Profiler.Never_clean -> " (no clean timing)"
        | Some Harness.Profiler.Unstable -> " (unstable timings)"
        | None -> "");
      Printf.printf "unroll factors: %d / %d; pages mapped: %d\n" p.factors.large
        p.factors.small p.large.faults;
      Printf.printf "counters: %s\n"
        (Format.asprintf "%a" Pipeline.Counters.pp p.large.counters)
    | Error e ->
      let fingerprint = Engine.fingerprint { Engine.env; uarch; block } in
      Printf.printf "\nprofiling failed: %s\n"
        (Engine.error_to_string ~fingerprint e));
    if schedule then print_ground_truth_schedule uarch block;
    if with_models then begin
      print_newline ();
      List.iter
        (fun (m : Models.Model_intf.t) ->
          match m.predict block with
          | Models.Model_intf.Throughput tp -> Printf.printf "%-10s %.2f\n" m.name tp
          | Models.Model_intf.Unsupported r -> Printf.printf "%-10s - (%s)\n" m.name r)
        [ Models.Iaca.create uarch; Models.Llvm_mca.create uarch;
          Models.Osaca.create uarch ]
    end

let cmd =
  let uarch =
    Arg.(value & opt uarch_conv Uarch.All.haswell & info [ "u"; "uarch" ] ~doc:"Microarchitecture: ivb, hsw or skl.")
  in
  let naive =
    Arg.(value & opt (some int) None & info [ "naive-unroll" ] ~doc:"Use naive unrolling with the given factor instead of the two-point method.")
  in
  let keep_underflow =
    Arg.(value & flag & info [ "keep-gradual-underflow" ] ~doc:"Do not set FTZ/DAZ before measuring.")
  in
  let keep_misaligned =
    Arg.(value & flag & info [ "keep-misaligned" ] ~doc:"Do not reject blocks with cache-line-crossing accesses.")
  in
  let with_models =
    Arg.(value & flag & info [ "m"; "models" ] ~doc:"Also print the predictions of the cost models.")
  in
  let schedule =
    Arg.(value & flag & info [ "schedule" ] ~doc:"Dump the simulated core's execution schedule.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc:"Measurement worker domains for the engine (default \\$BHIVE_JOBS).")
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Assembly file ('-' for stdin). AT&T and Intel syntax accepted.")
  in
  Cmd.v
    (Cmd.info "bhive_profile" ~doc:"Measure the steady-state throughput of an x86-64 basic block")
    Term.(const run $ Cli_faults.setup $ uarch $ naive $ keep_underflow $ keep_misaligned $ with_models $ schedule $ jobs $ file)

let () =
  Telemetry.Trace.init_from_env ();
  exit (Cmd.eval cmd)
