(* bhive_classify: fit the LDA category model on the generated suite and
   print the category table, per-application composition and exemplars. *)

open Cmdliner

let run () scale exemplars =
  let config = { Corpus.Suite.default_config with scale } in
  let blocks = Corpus.Suite.generate ~config () in
  Printf.printf "classifying %d blocks...\n%!" (List.length blocks);
  let cls = Classify.Categories.fit blocks in
  let fmt = Format.std_formatter in
  Bhive.Report.categories fmt cls blocks;
  Bhive.Report.composition fmt
    ~title:"Per-application composition" (Classify.Composition.rows cls blocks);
  if exemplars then
    Bhive.Report.exemplars fmt (Classify.Categories.exemplars cls blocks)

let cmd =
  let scale =
    Arg.(value & opt int 100 & info [ "s"; "scale" ] ~doc:"Corpus scale divisor.")
  in
  let exemplars =
    Arg.(value & flag & info [ "e"; "exemplars" ] ~doc:"Print one example block per category.")
  in
  Cmd.v
    (Cmd.info "bhive_classify" ~doc:"Classify the benchmark suite into port-usage categories")
    Term.(const run $ Cli_faults.setup $ scale $ exemplars)

let () =
  Telemetry.Trace.init_from_env ();
  exit (Cmd.eval cmd)
