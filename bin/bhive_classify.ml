(* bhive_classify: fit the LDA category model on the generated suite and
   print the category table, per-application composition and exemplars.
   A thin wrapper around a classification manifest. *)

open Cmdliner

let spec scale exemplars =
  let sections =
    [
      Manifest.Spec.section Manifest.Spec.Classifier;
      Manifest.Spec.section Manifest.Spec.Categories;
      Manifest.Spec.section
        (Manifest.Spec.Composition { title = "Per-application composition" });
    ]
    @
    if exemplars then [ Manifest.Spec.section Manifest.Spec.Exemplars ]
    else []
  in
  Manifest.Spec.make ~name:"classify" ~scale ~sections ()

let run setup scale exemplars = Cli_common.run_spec setup (spec scale exemplars)

let cmd =
  let scale =
    Arg.(value & opt int 100 & info [ "s"; "scale" ] ~doc:"Corpus scale divisor.")
  in
  let exemplars =
    Arg.(value & flag & info [ "e"; "exemplars" ] ~doc:"Print one example block per category.")
  in
  Cmd.v
    (Cmd.info "bhive_classify" ~doc:"Classify the benchmark suite into port-usage categories")
    Term.(const run $ Cli_common.setup $ scale $ exemplars)

let () = exit (Cmd.eval cmd)
