(* bhive_store: inspect and maintain persistent measurement stores.

     bhive_store stats  DIR          counters and shard layout
     bhive_store verify DIR          full checksum re-scan; exit 1 on corruption
     bhive_store gc     DIR          compact: drop superseded generations
     bhive_store export DIR [FILE]   dump live records as JSONL (default stdout)
     bhive_store import DIR FILE     append records from a JSONL dump

   The export format is one object per line —
   {"key": <hex sha256>, "gen": <hex sha256>, "payload": <hex bytes>} —
   which is how a measured store ships as a dataset artifact (BHive
   publishes its measurements the same way). Import appends through the
   normal put path, so existing (key, generation) records are kept and
   the dump's records land in the right shards regardless of the
   exporting host. *)

open Cmdliner

let open_store path =
  match Store.open_ path with
  | s -> s
  | exception Failure msg ->
    prerr_endline ("bhive_store: " ^ msg);
    exit 2

let dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory.")

let run_stats dir =
  let st = open_store dir in
  let s = Store.stats st in
  Printf.printf "store:          %s\n" s.Store.s_dir;
  Printf.printf "shards:         %d\n" s.Store.s_shards;
  Printf.printf "live records:   %d\n" s.Store.s_live;
  Printf.printf "total records:  %d\n" s.Store.s_records;
  Printf.printf "superseded:     %d\n" s.Store.s_superseded;
  Printf.printf "torn tails:     %d (truncated at open)\n" s.Store.s_torn;
  Printf.printf "stale segments: %d (incompatible writer)\n"
    s.Store.s_stale_segments;
  Printf.printf "bytes:          %d\n" s.Store.s_bytes;
  Printf.printf "index opens:    %d persisted, %d scanned\n"
    s.Store.s_index_persisted s.Store.s_index_scanned;
  Printf.printf "open time:      %.6f s\n" s.Store.s_open_seconds;
  List.iter
    (fun ss ->
      if ss.Store.ss_records > 0 || ss.Store.ss_live > 0 then
        Printf.printf
          "  shard %02d: %d live / %d records, %d bytes, %s open (%.6f s)\n"
          ss.Store.ss_shard ss.Store.ss_live ss.Store.ss_records
          ss.Store.ss_bytes
          (if ss.Store.ss_persisted then "persisted-index" else "scan")
          ss.Store.ss_open_seconds)
    s.Store.s_per_shard;
  let gens = Store.gen_stats st in
  Printf.printf "generations:    %d\n" (List.length gens);
  List.iter
    (fun g ->
      Printf.printf "  gen %s…: %d live, %d bytes\n"
        (String.sub g.Store.g_gen 0 (min 12 (String.length g.Store.g_gen)))
        g.Store.g_live g.Store.g_bytes)
    gens;
  Store.close st

let run_verify dir =
  let st = open_store dir in
  let v = Store.verify st in
  Printf.printf "live records:   %d\n" v.Store.v_live;
  Printf.printf "records:        %d\n" v.Store.v_records;
  Printf.printf "corrupt:        %d\n" v.Store.v_corrupt;
  Printf.printf "torn at open:   %d\n" v.Store.v_torn;
  Printf.printf "stale segments: %d\n" v.Store.v_stale_segments;
  Printf.printf "index entries:  %d checked, %d mismatched, %d missing\n"
    v.Store.v_index_entries v.Store.v_index_mismatched v.Store.v_index_missing;
  Store.close st;
  if v.Store.v_corrupt > 0 then begin
    prerr_endline "bhive_store: verify FAILED (checksum errors)";
    exit 1
  end
  else if v.Store.v_index_mismatched > 0 then begin
    prerr_endline "bhive_store: verify FAILED (sidecar index disagrees)";
    exit 1
  end
  else print_endline "verify OK"

let run_gc dir =
  let st = open_store dir in
  let g = Store.gc st in
  Printf.printf "live records:   %d\n" g.Store.g_live;
  Printf.printf "dropped:        %d\n" g.Store.g_dropped;
  Printf.printf "bytes:          %d -> %d\n" g.Store.g_bytes_before
    g.Store.g_bytes_after;
  Store.close st

let record_json ~key ~gen payload =
  Telemetry.Json.Object
    [
      ("key", Telemetry.Json.String key);
      ("gen", Telemetry.Json.String gen);
      ("payload", Telemetry.Json.String (Store.Codec.to_hex payload));
    ]

let run_export dir file =
  let st = open_store dir in
  let write oc =
    let n =
      Store.fold st ~init:0 ~f:(fun n ~key ~gen payload ->
          output_string oc
            (Telemetry.Json.to_string ~compact:true
               (record_json ~key ~gen payload));
          output_char oc '\n';
          n + 1)
    in
    n
  in
  let n =
    match file with
    | None -> write stdout
    | Some path -> Out_channel.with_open_bin path write
  in
  Store.close st;
  Printf.eprintf "exported %d records\n" n

let run_import dir file =
  let st = open_store dir in
  let lineno = ref 0 in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        prerr_endline
          (Printf.sprintf "bhive_store: %s:%d: %s" file !lineno msg);
        exit 2)
      fmt
  in
  let imported = ref 0 and kept = ref 0 in
  In_channel.with_open_bin file (fun ic ->
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          incr lineno;
          if String.trim line <> "" then begin
            let j =
              match Telemetry.Json.parse line with
              | Ok j -> j
              | Error msg -> bad "%s" msg
            in
            let field name =
              match
                Option.bind (Telemetry.Json.member name j)
                  Telemetry.Json.string_value
              with
              | Some s -> s
              | None -> bad "missing string field %S" name
            in
            let key = field "key" and gen = field "gen" in
            let payload =
              match Store.Codec.of_hex (field "payload") with
              | Some p -> p
              | None -> bad "payload is not valid hex"
            in
            if Store.put st ~key ~gen payload then incr imported
            else incr kept
          end;
          loop ()
      in
      loop ());
  Store.close st;
  Printf.printf "imported %d records (%d already present)\n" !imported !kept

let cmd =
  let stats =
    Cmd.v
      (Cmd.info "stats" ~doc:"Print store counters and shard layout.")
      Term.(const run_stats $ dir_pos)
  in
  let verify =
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Re-scan every segment, re-check every record checksum and \
            validate the sidecar indexes; exit 1 on corruption or a \
            disagreeing index entry.")
      Term.(const run_verify $ dir_pos)
  in
  let gc =
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Compact the store: rewrite live records and drop superseded \
            generations, torn tails and stale segments.")
      Term.(const run_gc $ dir_pos)
  in
  let export =
    let file =
      Arg.(
        value
        & pos 1 (some string) None
        & info [] ~docv:"FILE" ~doc:"Output JSONL file (default stdout).")
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:"Dump live records as JSONL, key-sorted (a dataset artifact).")
      Term.(const run_export $ dir_pos $ file)
  in
  let import =
    let file =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"FILE" ~doc:"Input JSONL file from $(b,export).")
    in
    Cmd.v
      (Cmd.info "import" ~doc:"Append records from a JSONL dump.")
      Term.(const run_import $ dir_pos $ file)
  in
  Cmd.group
    (Cmd.info "bhive_store"
       ~doc:"Inspect and maintain persistent measurement stores.")
    [ stats; verify; gc; export; import ]

let () = exit (Cmd.eval cmd)
