(* bhive_corpus: dump generated basic blocks as assembly text, optionally
   filtered by application — useful for feeding other tools or eyeballing
   what the generators produce. A thin wrapper around a one-section
   dump manifest. *)

open Cmdliner

let spec scale app limit freq =
  Manifest.Spec.make ~name:"corpus" ~scale
    ~sections:
      [
        Manifest.Spec.section
          (Manifest.Spec.Corpus_dump { variant = "extended"; app; limit; freq });
      ]
    ()

let run setup scale app limit freq =
  Cli_common.run_spec setup (spec scale app limit freq)

let cmd =
  let scale =
    Arg.(value & opt int 400 & info [ "s"; "scale" ] ~doc:"Corpus scale divisor.")
  in
  let app_arg =
    Arg.(value & opt (some string) None & info [ "a"; "app" ] ~doc:"Only blocks from this application.")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "n"; "limit" ] ~doc:"Print at most this many blocks.")
  in
  let with_freq =
    Arg.(value & flag & info [ "f"; "freq" ] ~doc:"Include execution frequencies.")
  in
  Cmd.v
    (Cmd.info "bhive_corpus" ~doc:"Dump generated benchmark-suite basic blocks as assembly")
    Term.(const run $ Cli_common.setup $ scale $ app_arg $ limit $ with_freq)

let () = exit (Cmd.eval cmd)
