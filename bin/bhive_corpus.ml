(* bhive_corpus: dump generated basic blocks as assembly text, optionally
   filtered by application — useful for feeding other tools or eyeballing
   what the generators produce. *)

open Cmdliner

let run () scale app limit with_freq =
  let config = { Corpus.Suite.default_config with scale } in
  let blocks = Corpus.Suite.generate_extended ~config () in
  let blocks =
    match app with
    | Some name -> List.filter (fun (b : Corpus.Block.t) -> b.app = name) blocks
    | None -> blocks
  in
  let blocks =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) blocks
    | None -> blocks
  in
  List.iter
    (fun (b : Corpus.Block.t) ->
      if with_freq then Printf.printf "# %s freq=%d\n" b.id b.freq
      else Printf.printf "# %s\n" b.id;
      print_endline (Corpus.Block.text b);
      print_newline ())
    blocks

let cmd =
  let scale =
    Arg.(value & opt int 400 & info [ "s"; "scale" ] ~doc:"Corpus scale divisor.")
  in
  let app_arg =
    Arg.(value & opt (some string) None & info [ "a"; "app" ] ~doc:"Only blocks from this application.")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "n"; "limit" ] ~doc:"Print at most this many blocks.")
  in
  let with_freq =
    Arg.(value & flag & info [ "f"; "freq" ] ~doc:"Include execution frequencies.")
  in
  Cmd.v
    (Cmd.info "bhive_corpus" ~doc:"Dump generated benchmark-suite basic blocks as assembly")
    Term.(const run $ Cli_faults.setup $ scale $ app_arg $ limit $ with_freq)

let () =
  Telemetry.Trace.init_from_env ();
  exit (Cmd.eval cmd)
