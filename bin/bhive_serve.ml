(* bhive_serve: the prediction daemon. Listens on a Unix socket,
   answers length-prefixed predict requests through a sharded pool of
   engines (memo cache -> shared persistent store -> profiler), and
   degrades under overload into typed refusals instead of hangs:

   - sharded dispatch: --shards dispatcher domains (default: one per
     spare core; --jobs is an alias), each owning one engine, with
     requests routed by job fingerprint so coalescing stays exact and
     answers never depend on the pool size;
   - admission control: bounded per-shard queues; a request that does
     not fit is refused with [overloaded] immediately;
   - coalescing: concurrent requests for the same job fingerprint
     share one in-flight measurement;
   - multi-process store sharing: several daemons may point --store at
     the same directory — per-shard advisory file locks serialise
     writers, so a kill -9'd sibling never corrupts a record. Within
     this process all shard engines share ONE store handle (the file
     locks are per-process);
   - graceful drain: SIGTERM/SIGINT stop accepting, finish (or shed,
     past --drain-grace) queued work, flush telemetry, exit 0.

   See DESIGN.md §10-§12 for the wire protocol, the drain state
   machine and the shard pool; bhive_load is the matching load
   generator. *)

open Cmdliner

let run socket store jobs shards trace queue_capacity batch_max idle_timeout
    write_timeout drain_grace =
  (match Engine.validate_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("bhive_serve: " ^ msg);
    exit 2);
  (match trace with
  | Some path -> Telemetry.Trace.install_file path
  | None -> Telemetry.Trace.init_from_env ());
  if queue_capacity < 1 || batch_max < 1 then begin
    prerr_endline "bhive_serve: --queue-capacity and --batch-max must be >= 1";
    exit 2
  end;
  let nshards =
    match (shards, jobs) with
    | Some n, _ | None, Some n -> n
    | None, None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if nshards < 1 then begin
    prerr_endline "bhive_serve: --shards must be >= 1";
    exit 2
  end;
  (* one store handle for the whole pool: the store's cross-process
     file locks are per-process, so per-engine opens of the same
     directory would break intra-process append exclusion *)
  let store_path =
    match store with Some _ as p -> p | None -> Engine.default_store_path ()
  in
  let shared_store = Option.map Store.open_ store_path in
  let engines =
    Array.init nshards (fun _ ->
        Engine.create ~jobs:1 ?store:shared_store ())
  in
  let config =
    {
      (Serve.Server.default_config socket) with
      queue_capacity;
      batch_max;
      idle_timeout;
      write_timeout;
      drain_grace;
    }
  in
  let server =
    match Serve.Server.create ~config ~engines socket with
    | s -> s
    | exception Failure msg ->
      prerr_endline ("bhive_serve: " ^ msg);
      exit 2
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "bhive_serve: cannot listen on %s: %s\n" socket
        (Unix.error_message e);
      exit 2
  in
  Printf.eprintf "bhive_serve: pid %d listening on %s (%d shards)\n%!"
    (Unix.getpid ()) socket nshards;
  Serve.Server.run server;
  let c = Serve.Server.counters server in
  Printf.eprintf
    "bhive_serve: drained — %d conns, %d requests (%d accepted, %d coalesced, \
     %d warm), shed %d/%d/%d (overload/deadline/drain)\n%!"
    c.Serve.Server.connections c.requests c.accepted c.coalesced c.warm_hits
    c.shed_overload c.shed_deadline c.shed_drain;
  Telemetry.Trace.uninstall ();
  exit 0

let cmd =
  let socket =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"Unix socket path to listen on.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:"Stream a JSONL span trace to PATH. Overrides \\$BHIVE_TRACE.")
  in
  let d = Serve.Server.default_config "" in
  let queue_capacity =
    Arg.(
      value
      & opt int d.Serve.Server.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Admission-control bound: queued (not yet dispatched) requests \
             beyond N are refused with $(b,overloaded).")
  in
  let batch_max =
    Arg.(
      value
      & opt int d.Serve.Server.batch_max
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Maximum queued requests dispatched as one engine batch.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float d.Serve.Server.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close a connection idle between requests for this long.")
  in
  let write_timeout =
    Arg.(
      value
      & opt float d.Serve.Server.write_timeout
      & info [ "write-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Budget for writing one response; a slower client's connection \
             is dropped so it cannot wedge a handler.")
  in
  let drain_grace =
    Arg.(
      value
      & opt float d.Serve.Server.drain_grace
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "After SIGTERM/SIGINT, finish queued work for this long; \
             whatever remains is shed with $(b,shutting_down).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Dispatcher pool size: N domains, each owning one engine. \
             Defaults to $(b,--jobs) if given, else one per spare core.")
  in
  let term =
    Term.(
      const run $ socket $ Cli_common.store_arg $ Cli_common.jobs_arg $ shards
      $ trace $ queue_capacity $ batch_max $ idle_timeout $ write_timeout
      $ drain_grace)
  in
  Cmd.v
    (Cmd.info "bhive_serve"
       ~doc:
         "Overload-safe prediction daemon: serve basic-block throughput \
          predictions over a Unix socket.")
    term

let () = exit (Cmd.eval cmd)
