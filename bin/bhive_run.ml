(* bhive_run: execute a declarative experiment manifest end-to-end.

     bhive_run examples/bench.manifest.json

   The run is journaled: each completed section's output is recorded
   in the manifest's journal file, and re-running the same manifest
   against the same store and journal replays completed sections and
   re-profiles nothing the store already holds. A killed run therefore
   resumes where it stopped, and the final summary is byte-identical
   (volatile fields aside) to an uninterrupted run's. *)

open Cmdliner

let load path =
  match Manifest.Spec.load path with
  | Ok spec -> spec
  | Error msg ->
    prerr_endline ("bhive: " ^ msg);
    exit 2

(* First SIGINT/SIGTERM: request a graceful stop — the runner finishes
   the in-progress section, appends its journal entry (the tail stays
   well-formed for resume) and exits 3 through the interrupted path. A
   second signal exits 3 immediately for a run that is stuck. *)
let install_interrupt_handlers () =
  let signalled = ref false in
  let handler =
    Sys.Signal_handle
      (fun _ ->
        if !signalled then exit 3;
        signalled := true;
        Manifest.Runner.request_interrupt ())
  in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

let run setup path print_id fresh max_sections kill_after_jobs =
  let spec = load path in
  if print_id then begin
    Printf.printf "manifest   %s\n" (Manifest.Spec.id spec);
    Printf.printf "experiment %s\n" (Manifest.Spec.experiment_id spec);
    exit 0
  end;
  install_interrupt_handlers ();
  Cli_common.run_spec ?max_sections ?kill_after_jobs ~fresh setup spec

let cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST" ~doc:"Path to a .manifest.json file.")
  in
  let print_id =
    Arg.(
      value & flag
      & info [ "print-id" ]
          ~doc:
            "Print the manifest id and experiment id (both SHA-256 over the \
             canonical encoding) and exit without running.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:
            "Discard the journal before running: every section re-executes \
             (the measurement store is untouched, so profiling still hits \
             warm entries).")
  in
  let max_sections =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sections" ] ~docv:"N"
          ~doc:
            "Stop after the first N sections and exit 3 — simulates a kill \
             at a section boundary; re-running without this flag resumes.")
  in
  let kill_after_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after-jobs" ] ~docv:"N"
          ~doc:
            "Testing hook: abort the process (uncleanly, mid-section) after \
             the Nth profiled job resolves.")
  in
  Cmd.v
    (Cmd.info "bhive_run" ~doc:"Execute a declarative experiment manifest")
    Term.(
      const run $ Cli_common.setup $ path $ print_id $ fresh $ max_sections
      $ kill_after_jobs)

let () = exit (Cmd.eval cmd)
