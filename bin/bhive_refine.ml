(* bhive_refine: perturb a descriptor's instruction tables with a
   pinned seed, then run the lib/refine search that recovers them from
   counter discrepancies — the CounterPoint-style repair loop as a CLI.
   A thin wrapper: the flags synthesize a one-section manifest
   (printable with --emit-manifest, resumable through --journal) which
   [Manifest.Runner] executes. *)

open Cmdliner

(* "--perturb seed=S,edits=N": both keys optional, order free. *)
let perturb_parse s =
  let default = (1L, 2) in
  let parse_kv (seed, edits) kv =
    match String.index_opt kv '=' with
    | None -> Error (`Msg (Printf.sprintf "perturb: %S is not key=value" kv))
    | Some i -> (
      let k = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      match k with
      | "seed" -> (
        match Int64.of_string_opt v with
        | Some s -> Ok (s, edits)
        | None -> Error (`Msg (Printf.sprintf "perturb: bad seed %S" v)))
      | "edits" -> (
        match int_of_string_opt v with
        | Some e when e >= 1 -> Ok (seed, e)
        | _ -> Error (`Msg (Printf.sprintf "perturb: bad edits %S" v)))
      | _ -> Error (`Msg (Printf.sprintf "perturb: unknown key %S" k)))
  in
  List.fold_left
    (fun acc kv -> Result.bind acc (fun st -> parse_kv st kv))
    (Ok default)
    (String.split_on_char ',' (String.trim s))

let perturb_conv =
  Arg.conv
    ( perturb_parse,
      fun fmt (seed, edits) ->
        Format.fprintf fmt "seed=%Ld,edits=%d" seed edits )

let spec scale uarch (seed, edits) target_error max_evals summary journal =
  Manifest.Spec.make ~name:"refine" ~scale ~uarches:[ uarch ]
    ~output:{ Manifest.Spec.default_output with summary; journal }
    ~sections:
      [
        Manifest.Spec.section
          (Manifest.Spec.Refine
             { uarch; seed; edits; target_error; max_evals });
      ]
    ()

let run setup scale uarch perturb target_error max_evals summary journal
    fresh =
  Cli_common.run_spec ~fresh setup
    (spec scale uarch perturb target_error max_evals summary journal)

let cmd =
  let scale =
    Arg.(
      value & opt int 100
      & info [ "s"; "scale" ]
          ~doc:"Corpus scale divisor (1 = full paper-sized suite).")
  in
  let uarch =
    Arg.(
      value & opt string "ivb"
      & info [ "u"; "uarch" ] ~docv:"SHORT"
          ~doc:"Microarchitecture whose descriptor is perturbed and repaired.")
  in
  let perturb =
    Arg.(
      value
      & opt perturb_conv (1L, 2)
      & info [ "perturb" ] ~docv:"SPEC"
          ~doc:
            "Deterministic table breakage, e.g. \
             $(b,seed=42,edits=3): perturb that many entries as a pure \
             function of the seed. The same spec always breaks the same \
             entries.")
  in
  let target_error =
    Arg.(
      value & opt float 0.05
      & info [ "target-error" ] ~docv:"ERR"
          ~doc:
            "Stop as soon as the candidate's mean relative throughput error \
             against the reference drops to ERR or below.")
  in
  let max_evals =
    Arg.(
      value & opt int 200
      & info [ "max-evals" ] ~docv:"N"
          ~doc:"Candidate-evaluation budget, including the baseline.")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"PATH"
          ~doc:
            "Write a bench_summary.json (schema v9, with the $(b,refine) \
             object) to PATH.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Run journal: every candidate evaluation is appended as it \
             completes, and re-running with the same journal resumes the \
             search mid-way instead of restarting it.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:"Discard an existing journal instead of resuming from it.")
  in
  Cmd.v
    (Cmd.info "bhive_refine"
       ~doc:
         "Recover perturbed descriptor tables from counter discrepancies")
    Term.(
      const run $ Cli_common.setup $ scale $ uarch $ perturb $ target_error
      $ max_evals $ summary $ journal $ fresh)

let () = exit (Cmd.eval cmd)
