(* bhive_load: corpus-replaying load generator for bhive_serve.

   N client threads each open one connection and replay the same
   benchmark corpus in the same order from index 0 — deliberately
   maximising duplicate concurrent requests, so a correct server shows
   a coalesce ratio above 1.0. With --batch N the replay rides the v2
   [predict_batch] op, N blocks per frame (per-slot accounting, frame
   latency attributed to each slot); --batch 1 (the default) is the
   plain v1 per-request path, so one load run can exercise either
   protocol version. Per-request latency is recorded client-side;
   after the load phase the server's counters are snapshotted over a
   [stats] request, and (with --verify) every distinct block's
   response is byte-compared against a local engine's rendering of the
   same job (always over v1 single predicts — so a batched load run
   plus --verify crosses the two wire versions against one server).

   The summary (--summary) is a schema-v8 bench_summary.json carrying
   a [serving] object, gated in CI by bhive_bench_diff:
   [serving.lost] and [serving.shed_after_accept] must be zero,
   --min-coalesce / --max-p99-ms bound the service-level numbers, and
   --min-rps floors [serving.requests_per_sec] against a baseline. The
   manifest identity is [Manifest.Spec.bench] at the replayed scale
   (or the spec loaded from --manifest), so a load summary and a
   serving baseline from the same scale agree on their experiment id.

   Exit codes: 0 success; 1 lost requests or verification mismatches;
   2 invalid arguments / environment / connection failure. *)

open Cmdliner
module Json = Telemetry.Json

(* Per-thread tallies, merged after join — no locking on the hot path. *)
type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable lost : int;  (** sent but no well-formed response *)
  mutable r_overloaded : int;
  mutable r_deadline : int;
  mutable r_shutting : int;
  mutable r_bad : int;
  mutable lat_ms : float list;  (** latencies of [ok] responses *)
  mutable frames : int;  (** wire frames carrying predict work *)
  batch_hist : (int, int) Hashtbl.t;  (** batch size -> frame count *)
}

let fresh_tally () =
  {
    sent = 0;
    ok = 0;
    lost = 0;
    r_overloaded = 0;
    r_deadline = 0;
    r_shutting = 0;
    r_bad = 0;
    lat_ms = [];
    frames = 0;
    batch_hist = Hashtbl.create 8;
  }

let predict_request ~uarch ~deadline_ms (b : Corpus.Block.t) =
  Serve.Wire.Predict
    {
      Serve.Wire.asm = Corpus.Block.text b;
      uarch;
      deadline_ms;
      block_hex = None;
      filters = Manifest.Spec.default_filters;
    }

let batch_request ~uarch ~deadline_ms blocks =
  Serve.Wire.Predict_batch
    {
      Serve.Wire.pb_uarch = uarch;
      pb_deadline_ms = deadline_ms;
      pb_filters = Manifest.Spec.default_filters;
      pb_blocks =
        List.map
          (fun b ->
            {
              Serve.Wire.bb_asm = Corpus.Block.text b;
              bb_block_hex = None;
            })
          blocks;
    }

(* Split into consecutive chunks of at most [n]. *)
let chunks n lst =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 lst

let count_refusal (t : tally) = function
  | Serve.Wire.Overloaded -> t.r_overloaded <- t.r_overloaded + 1
  | Serve.Wire.Deadline_exceeded -> t.r_deadline <- t.r_deadline + 1
  | Serve.Wire.Shutting_down -> t.r_shutting <- t.r_shutting + 1
  | Serve.Wire.Bad_request -> t.r_bad <- t.r_bad + 1

(* One thread's replay: [repeat] passes over the whole corpus, all
   threads in the same order. A transport error loses that request and
   reconnects; refusals are counted by kind and are not losses. Only
   the initial connect retries with backoff — a mid-run reconnect
   fails immediately, so a killed server drains the remaining workload
   as fast losses instead of minutes of per-request retry sleeps.
   [batch] >= 2 rides v2 predict_batch frames; each slot of a frame is
   accounted exactly like a single request would be, with the frame's
   round-trip latency attributed to every slot (that IS the latency a
   batched caller observes per answer).

   [singles] / [groups] are request payloads pre-encoded once by the
   caller and shared read-only by every thread: the generator pays the
   JSON encoding per distinct frame, not per send, so on a box where
   client and server share cores the measured throughput is the
   server's, not the generator's. *)
let replay ~socket ~repeat ~batch ~singles ~groups (t : tally) =
  let conn = ref None in
  let connect ?(retries = 0) () =
    match Serve.Client.connect ~retries ~retry_interval:0.1 socket with
    | Ok c ->
      conn := Some c;
      true
    | Error _ ->
      conn := None;
      false
  in
  ignore (connect ~retries:20 ());
  let record_frame k =
    t.frames <- t.frames + 1;
    Hashtbl.replace t.batch_hist k
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.batch_hist k))
  in
  let single payload =
    match !conn with
    | None ->
      if connect () then ()
      else (
        t.sent <- t.sent + 1;
        t.lost <- t.lost + 1)
    | Some c -> (
      t.sent <- t.sent + 1;
      record_frame 1;
      let t0 = Telemetry.Trace.now_ns () in
      match Serve.Client.request_raw c payload with
      | Ok (Serve.Wire.Result _) ->
        let dt =
          Int64.to_float (Int64.sub (Telemetry.Trace.now_ns ()) t0) /. 1e6
        in
        t.ok <- t.ok + 1;
        t.lat_ms <- dt :: t.lat_ms
      | Ok (Serve.Wire.Refused (kind, _)) -> count_refusal t kind
      | Ok _ | Error _ ->
        t.lost <- t.lost + 1;
        Serve.Client.close c;
        conn := None)
  in
  let batched (k, payload) =
    match !conn with
    | None ->
      if connect () then ()
      else (
        t.sent <- t.sent + k;
        t.lost <- t.lost + k)
    | Some c -> (
      t.sent <- t.sent + k;
      record_frame k;
      let t0 = Telemetry.Trace.now_ns () in
      match Serve.Client.request_raw c payload with
      | Ok (Serve.Wire.Results slots) when List.length slots = k ->
        let dt =
          Int64.to_float (Int64.sub (Telemetry.Trace.now_ns ()) t0) /. 1e6
        in
        List.iter
          (function
            | Serve.Wire.Result _ ->
              t.ok <- t.ok + 1;
              t.lat_ms <- dt :: t.lat_ms
            | Serve.Wire.Refused (kind, _) -> count_refusal t kind
            | _ -> t.lost <- t.lost + 1)
          slots
      | Ok (Serve.Wire.Refused (kind, _)) ->
        (* whole-frame refusal (e.g. draining before parse) *)
        for _ = 1 to k do
          count_refusal t kind
        done
      | Ok _ | Error _ ->
        t.lost <- t.lost + k;
        Serve.Client.close c;
        conn := None)
  in
  for _ = 1 to repeat do
    if batch > 1 then List.iter batched groups else List.iter single singles
  done;
  Option.iter Serve.Client.close !conn

(* Exact percentile over the sorted latency sample: the value at rank
   ceil(q * n) (1-based), i.e. the smallest latency >= q of the sample. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Byte-identity verification: replay each distinct block once over a
   fresh connection and compare the server's rendered outcome with a
   local engine's rendering of the same job — same parser, same
   environment resolution, same canonical rendering, so any
   disagreement is a real divergence between daemon and CLI answers. *)
let verify_blocks ~socket ~uarch blocks =
  match Serve.Client.connect ~retries:10 socket with
  | Error msg ->
    prerr_endline ("bhive_load: verify: " ^ msg);
    (0, List.length blocks)
  | Ok c ->
    let engine = Engine.create () in
    let udesc = Option.get (Uarch.All.by_short uarch) in
    let verified = ref 0 and mismatches = ref 0 in
    List.iter
      (fun b ->
        let remote =
          match
            Serve.Client.request c
              (predict_request ~uarch ~deadline_ms:None b)
          with
          | Ok (Serve.Wire.Result r) -> Some (Json.to_string ~compact:true r)
          | _ -> None
        in
        let local =
          let job =
            {
              Engine.env =
                Manifest.Spec.environment_of_filters
                  Manifest.Spec.default_filters;
              uarch = udesc;
              block = b.Corpus.Block.insts;
            }
          in
          let batch = Engine.run_batch engine [ job ] in
          Json.to_string ~compact:true
            (Serve.Wire.outcome_json batch.Engine.outcomes.(0))
        in
        match remote with
        | Some r when r = local -> incr verified
        | Some r ->
          incr mismatches;
          if !mismatches <= 3 then
            Printf.eprintf
              "bhive_load: verify mismatch on %s:\n  server %s\n  local  %s\n"
              b.Corpus.Block.id r local
        | None -> incr mismatches)
      blocks;
    Serve.Client.close c;
    (!verified, !mismatches)

let run socket concurrency repeat scale uarch deadline_ms batch manifest verify
    summary_path =
  (match Engine.validate_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("bhive_load: " ^ msg);
    exit 2);
  Telemetry.Trace.init_from_env ();
  if concurrency < 1 || repeat < 1 then begin
    prerr_endline "bhive_load: --concurrency and --repeat must be >= 1";
    exit 2
  end;
  if batch < 1 then begin
    prerr_endline "bhive_load: --batch must be >= 1";
    exit 2
  end;
  if Uarch.All.by_short uarch = None then begin
    Printf.eprintf "bhive_load: unknown uarch %S\n" uarch;
    exit 2
  end;
  let config =
    let c = Corpus.Suite.config_from_env () in
    match scale with
    | Some s when s >= 1 -> { c with Corpus.Suite.scale = s }
    | Some _ ->
      prerr_endline "bhive_load: --scale must be >= 1";
      exit 2
    | None -> c
  in
  (* --manifest pins the workload to a checked-in spec: its corpus
     scale wins over --scale/$BHIVE_SCALE, and the summary carries its
     ids, so a CI gate and a local run name the same experiment *)
  let spec, config =
    match manifest with
    | None -> (Manifest.Spec.bench ~scale:config.Corpus.Suite.scale (), config)
    | Some path -> (
      match Manifest.Spec.load path with
      | Error msg ->
        prerr_endline ("bhive_load: " ^ msg);
        exit 2
      | Ok spec ->
        let mscale = spec.Manifest.Spec.corpus.Manifest.Spec.scale in
        (spec, { config with Corpus.Suite.scale = mscale }))
  in
  let blocks = Corpus.Suite.generate ~config () in
  Printf.eprintf
    "bhive_load: %d blocks x %d repeats x %d threads (batch %d) against %s\n%!"
    (List.length blocks) repeat concurrency batch socket;
  (* liveness probe before spawning the fleet: a missing daemon is a
     clean exit 2, not [concurrency] threads of connect noise *)
  (match Serve.Client.connect ~retries:50 ~retry_interval:0.1 socket with
  | Error msg ->
    prerr_endline ("bhive_load: " ^ msg);
    exit 2
  | Ok c -> (
    match Serve.Client.request c Serve.Wire.Ping with
    | Ok Serve.Wire.Pong -> Serve.Client.close c
    | Ok _ | Error _ ->
      prerr_endline "bhive_load: server did not answer ping";
      exit 2));
  (* encode every frame once, up front; the threads replay shared
     read-only payload strings *)
  let singles =
    if batch > 1 then []
    else
      List.map
        (fun b ->
          Serve.Wire.request_to_string (predict_request ~uarch ~deadline_ms b))
        blocks
  in
  let groups =
    if batch > 1 then
      List.map
        (fun chunk ->
          ( List.length chunk,
            Serve.Wire.request_to_string
              (batch_request ~uarch ~deadline_ms chunk) ))
        (chunks batch blocks)
    else []
  in
  let tallies = Array.init concurrency (fun _ -> fresh_tally ()) in
  let t0 = Telemetry.Trace.now_ns () in
  let threads =
    Array.mapi
      (fun i t ->
        Thread.create
          (fun () -> replay ~socket ~repeat ~batch ~singles ~groups t)
          (ignore i))
      tallies
  in
  Array.iter Thread.join threads;
  let wall_seconds =
    Int64.to_float (Int64.sub (Telemetry.Trace.now_ns ()) t0) /. 1e9
  in
  (* server counters, snapshotted before verification so the verify
     pass's extra (uncoalesced, warm) requests do not dilute the load
     phase's coalesce ratio *)
  let server_stats =
    match Serve.Client.connect ~retries:10 socket with
    | Error msg ->
      prerr_endline ("bhive_load: stats: " ^ msg);
      None
    | Ok c ->
      let r =
        match Serve.Client.request c Serve.Wire.Stats with
        | Ok (Serve.Wire.Stats_reply s) -> Some s
        | _ -> None
      in
      Serve.Client.close c;
      r
  in
  let serving_counter name =
    Option.bind server_stats (fun s -> Json.path [ "serving"; name ] s)
    |> Fun.flip Option.bind Json.number
    |> Option.value ~default:0.0
  in
  let coalesce_ratio =
    let accepted = serving_counter "accepted" in
    let coalesced = serving_counter "coalesced" in
    if accepted > 0.0 then (accepted +. coalesced) /. accepted else 0.0
  in
  let shed_after_accept =
    serving_counter "shed_deadline" +. serving_counter "shed_drain"
  in
  let total = fresh_tally () in
  Array.iter
    (fun t ->
      total.sent <- total.sent + t.sent;
      total.ok <- total.ok + t.ok;
      total.lost <- total.lost + t.lost;
      total.r_overloaded <- total.r_overloaded + t.r_overloaded;
      total.r_deadline <- total.r_deadline + t.r_deadline;
      total.r_shutting <- total.r_shutting + t.r_shutting;
      total.r_bad <- total.r_bad + t.r_bad;
      total.lat_ms <- List.rev_append t.lat_ms total.lat_ms;
      total.frames <- total.frames + t.frames;
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace total.batch_hist k
            (v + Option.value ~default:0 (Hashtbl.find_opt total.batch_hist k)))
        t.batch_hist)
    tallies;
  let sorted = Array.of_list total.lat_ms in
  Array.sort compare sorted;
  let mean =
    if Array.length sorted = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 sorted /. float_of_int (Array.length sorted)
  in
  let verified, mismatches =
    if verify then verify_blocks ~socket ~uarch blocks else (0, 0)
  in
  let p50 = percentile sorted 0.50
  and p99 = percentile sorted 0.99
  and p999 = percentile sorted 0.999
  and pmax = percentile sorted 1.0 in
  Printf.eprintf
    "bhive_load: %d sent, %d ok, %d lost, %d refused \
     (overloaded %d, deadline %d, shutting_down %d, bad %d)\n\
     bhive_load: p50 %.2f ms, p99 %.2f ms, p99.9 %.2f ms, max %.2f ms, \
     %.1f req/s, coalesce %.3f\n\
     %!"
    total.sent total.ok total.lost
    (total.r_overloaded + total.r_deadline + total.r_shutting + total.r_bad)
    total.r_overloaded total.r_deadline total.r_shutting total.r_bad p50 p99
    p999 pmax
    (if wall_seconds > 0.0 then float_of_int total.ok /. wall_seconds else 0.0)
    coalesce_ratio;
  if verify then
    Printf.eprintf "bhive_load: verified %d blocks, %d mismatches\n%!" verified
      mismatches;
  (match summary_path with
  | None -> ()
  | Some path ->
    let rev =
      match Sys.getenv_opt "BHIVE_REV" with
      | Some r when String.trim r <> "" -> String.trim r
      | _ -> "unknown"
    in
    let n name v = (name, Json.Number (float_of_int v)) in
    let f name v = (name, Json.Number v) in
    let rps =
      if wall_seconds > 0.0 then float_of_int total.ok /. wall_seconds else 0.0
    in
    let store_counter name =
      Option.bind server_stats (fun s -> Json.path [ "store"; name ] s)
      |> Fun.flip Option.bind Json.number
      |> Option.value ~default:0.0
    in
    let histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) total.batch_hist []
      |> List.sort compare
      |> List.map (fun (k, v) ->
             (string_of_int k, Json.Number (float_of_int v)))
    in
    let serving =
      Json.Object
        ([
           n "concurrency" concurrency;
           n "repeat" repeat;
           n "requests" total.sent;
           n "ok" total.ok;
           n "lost" total.lost;
           ( "refused",
             Json.Object
               [
                 n "overloaded" total.r_overloaded;
                 n "deadline_exceeded" total.r_deadline;
                 n "shutting_down" total.r_shutting;
                 n "bad_request" total.r_bad;
               ] );
           f "shed_after_accept" shed_after_accept;
           f "coalesce_ratio" coalesce_ratio;
           f "p50_ms" p50;
           f "p99_ms" p99;
           f "p999_ms" p999;
           f "max_ms" pmax;
           f "mean_ms" mean;
           f "throughput_rps" rps;
           f "requests_per_sec" rps;
           f "wall_seconds" wall_seconds;
           ( "batch",
             Json.Object
               [
                 n "size" batch;
                 n "frames" total.frames;
                 ("histogram", Json.Object histogram);
               ] );
           ( "index_opens",
             Json.Object
               [
                 f "persisted" (store_counter "index_persisted");
                 f "scanned" (store_counter "index_scanned");
               ] );
           n "verified" verified;
           n "mismatches" mismatches;
         ]
        @
        match server_stats with
        | Some s -> [ ("server", s) ]
        | None -> [])
    in
    let doc =
      Json.Object
        [
          ("schema_version", Json.Number 9.0);
          ("scale", Json.Number (float_of_int config.Corpus.Suite.scale));
          ("rev", Json.String rev);
          ("name", Json.String "serve-load");
          ( "manifest",
            Json.Object
              [
                ("id", Json.String (Manifest.Spec.id spec));
                ("experiment", Json.String (Manifest.Spec.experiment_id spec));
              ] );
          ("serving", serving);
        ]
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Json.to_string doc);
        Out_channel.output_char oc '\n'));
  if total.lost > 0 || mismatches > 0 then exit 1;
  exit 0

let cmd =
  let socket =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"Unix socket of a running bhive_serve.")
  in
  let concurrency =
    Arg.(
      value & opt int 32
      & info [ "c"; "concurrency" ] ~docv:"N"
          ~doc:"Client threads, each with its own connection.")
  in
  let repeat =
    Arg.(
      value & opt int 2
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Passes over the corpus per thread.")
  in
  let scale =
    Arg.(
      value
      & opt (some int) None
      & info [ "scale" ] ~docv:"N"
          ~doc:
            "Corpus scale (1/N of the paper's block counts). Defaults to \
             \\$BHIVE_SCALE.")
  in
  let uarch =
    Arg.(
      value & opt string "hsw"
      & info [ "uarch" ] ~docv:"UARCH" ~doc:"Microarchitecture short name.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Attach a per-request deadline; requests dispatched after it \
             expires are refused with $(b,deadline_exceeded).")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Blocks per wire frame. 1 (default) replays over v1 single \
             $(b,predict) requests; N >= 2 rides the v2 \
             $(b,predict_batch) op, N blocks per frame.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"PATH"
          ~doc:
            "Load the workload spec from a manifest file; its corpus scale \
             wins over $(b,--scale), and the summary carries its ids.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After the load phase, replay each distinct block once and \
             byte-compare the server's response rendering against a local \
             engine's. Mismatches exit 1.")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"PATH"
          ~doc:
            "Write a schema-v8 bench_summary.json with a $(b,serving) \
             object (gate it with bhive_bench_diff).")
  in
  let term =
    Term.(
      const run $ socket $ concurrency $ repeat $ scale $ uarch $ deadline_ms
      $ batch $ manifest $ verify $ summary)
  in
  Cmd.v
    (Cmd.info "bhive_load"
       ~doc:
         "Replay the benchmark corpus against a bhive_serve daemon at \
          configurable concurrency; report latency percentiles, coalescing \
          and shed counts.")
    term

let () = exit (Cmd.eval cmd)
