(* bhive_validate: generate the suite, build ground-truth datasets, and
   evaluate the four cost models — the Table V pipeline as a CLI. *)

open Cmdliner

let run () scale uarches seed export jobs =
  let config = { Corpus.Suite.default_config with scale } in
  let config =
    match seed with Some s -> { config with seed = Int64.of_int s } | None -> config
  in
  (* one engine for every microarchitecture: measurement results are
     deterministic and byte-identical for any worker count *)
  let engine = Engine.create ?jobs () in
  let blocks = Corpus.Suite.generate ~config () in
  Printf.printf "suite: %d blocks (scale 1/%d)\n%!" (List.length blocks) scale;
  (* stderr, so stdout stays byte-identical across worker counts *)
  Printf.eprintf "engine: %d measurement workers\n%!" (Engine.jobs engine);
  let uarches =
    match uarches with
    | [] -> Uarch.All.all
    | shorts ->
      List.filter_map Uarch.All.by_short shorts
  in
  let evals =
    List.map
      (fun (u : Uarch.Descriptor.t) ->
        Printf.printf "profiling on %s...\n%!" u.name;
        let ds = Bhive.Dataset.build ~engine u blocks in
        Printf.printf "  %d/%d blocks measured (%.1f%%), %d AVX2-excluded\n%!"
          (Bhive.Dataset.size ds) ds.n_input
          (100.0 *. Bhive.Dataset.profiled_fraction ds)
          ds.n_avx2_excluded;
        if ds.quarantined <> [] then
          Printf.printf "  %d block(s) quarantined by the engine\n%!"
            (List.length ds.quarantined);
        (match export with
        | Some prefix ->
          let path = Printf.sprintf "%s-%s.csv" prefix u.short in
          Bhive.Export.to_file path ds;
          Printf.printf "  dataset written to %s\n%!" path
        | None -> ());
        (u.name, Bhive.Validation.evaluate_all ~engine ds))
      uarches
  in
  Bhive.Report.overall_error Format.std_formatter evals;
  let s = Engine.stats engine in
  Printf.printf "engine: %d jobs submitted, %d executed, %d cache hits\n"
    s.submitted s.executed s.cache_hits;
  if not (Faultsim.is_none (Engine.faults engine)) then
    Printf.printf
      "faults: %d retries, %d crashes, %d timeouts, %d workers replenished, %d quarantined\n"
      s.retries s.crashes s.timeouts s.workers_replenished s.quarantined;
  (match Engine.quarantines engine with
  | [] -> ()
  | _ ->
    let n = Engine.write_quarantine_manifest engine "failures.jsonl" in
    Printf.printf "%d quarantined job(s) written to failures.jsonl\n" n);
  if Engine.lost s <> 0 then begin
    Printf.eprintf "FATAL: %d job(s) lost\n" (Engine.lost s);
    exit 1
  end

let cmd =
  let scale =
    Arg.(value & opt int 100 & info [ "s"; "scale" ] ~doc:"Corpus scale divisor (1 = full paper-sized suite).")
  in
  let uarches =
    Arg.(value & opt_all string [] & info [ "u"; "uarch" ] ~doc:"Microarchitecture to validate (repeatable); default all.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Corpus generation seed override.")
  in
  let export =
    Arg.(value & opt (some string) None & info [ "export" ] ~doc:"Write each measured dataset to PREFIX-<uarch>.csv." ~docv:"PREFIX")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc:"Measurement worker domains (default \\$BHIVE_JOBS or the machine's recommended domain count). Results are identical for any value.")
  in
  Cmd.v
    (Cmd.info "bhive_validate" ~doc:"Validate the cost models against measured ground truth")
    Term.(const run $ Cli_faults.setup $ scale $ uarches $ seed $ export $ jobs)

let () =
  Telemetry.Trace.init_from_env ();
  exit (Cmd.eval cmd)
