(* bhive_validate: generate the suite, build ground-truth datasets, and
   evaluate the cost models — the Table V pipeline as a CLI. A thin
   wrapper: the flags synthesize a manifest (printable with
   --emit-manifest) which [Manifest.Runner] executes. *)

open Cmdliner

let spec scale uarches seed export =
  let sections =
    Manifest.Spec.section Manifest.Spec.Corpus_load
    :: (List.map
          (fun (u : Uarch.Descriptor.t) ->
            Manifest.Spec.section (Manifest.Spec.Dataset { uarch = u.short }))
          (match uarches with
          | [] -> Uarch.All.all
          | shorts -> List.filter_map Uarch.All.by_short shorts)
       @ [ Manifest.Spec.section Manifest.Spec.Validate ])
  in
  Manifest.Spec.make ~name:"validate" ~scale
    ?seed:(Option.map Int64.of_int seed)
    ~uarches
    ~output:
      { Manifest.Spec.default_output with export_prefix = export }
    ~sections ()

let run setup scale uarches seed export =
  Cli_common.run_spec setup (spec scale uarches seed export)

let cmd =
  let scale =
    Arg.(value & opt int 100 & info [ "s"; "scale" ] ~doc:"Corpus scale divisor (1 = full paper-sized suite).")
  in
  let uarches =
    Arg.(value & opt_all string [] & info [ "u"; "uarch" ] ~doc:"Microarchitecture to validate (repeatable); default all.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Corpus generation seed override.")
  in
  let export =
    Arg.(value & opt (some string) None & info [ "export" ] ~doc:"Write each measured dataset to PREFIX-<uarch>.csv." ~docv:"PREFIX")
  in
  Cmd.v
    (Cmd.info "bhive_validate" ~doc:"Validate the cost models against measured ground truth")
    Term.(const run $ Cli_common.setup $ scale $ uarches $ seed $ export)

let () = exit (Cmd.eval cmd)
