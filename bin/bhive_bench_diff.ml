(* bhive_bench_diff: compare two bench_summary.json files and exit
   non-zero when the perf trajectory regressed — the CI gate.

     bhive_bench_diff baseline.json current.json [thresholds]

   Exit codes: 0 pass (warnings allowed), 1 regression, 2 unreadable /
   unparseable / too-old-schema input, 3 the two summaries come from
   different experiments (manifest experiment ids differ) and are not
   comparable at all. See Telemetry.Bench_diff for the comparison
   rules. *)

open Cmdliner

let read_summary what path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
    Error (Printf.sprintf "cannot read %s summary %s: %s" what path msg)
  | contents -> (
    match Telemetry.Json.parse contents with
    | Ok v -> Ok v
    | Error msg ->
      Error (Printf.sprintf "cannot parse %s summary %s: %s" what path msg))

let describe what j =
  let field name =
    Option.bind (Telemetry.Json.member name j) (fun v ->
        match v with
        | Telemetry.Json.String s -> Some s
        | Telemetry.Json.Number n -> Some (Telemetry.Json.number_to_string n)
        | _ -> None)
  in
  Printf.printf "%s: scale=%s rev=%s\n" what
    (Option.value ~default:"?" (field "scale"))
    (Option.value ~default:"?" (field "rev"))

let run baseline_path current_path executed_rel executed_abs hit_rate_rel
    wall_rel wall_abs wall_fails identical min_store_hit_rate min_speedup
    min_coalesce max_p99_ms min_rps max_refine_error min_refine_hit_rate =
  match
    (read_summary "baseline" baseline_path, read_summary "current" current_path)
  with
  | Error msg, _ | _, Error msg ->
    prerr_endline msg;
    exit 2
  | Ok baseline, Ok current ->
    (* pre-manifest summaries (schema < 5: no manifest ids, counters
       not yet classified volatile) cannot be compared: say so
       precisely instead of failing on a missing field *)
    (match
       ( Telemetry.Bench_diff.check_schema baseline,
         Telemetry.Bench_diff.check_schema current )
     with
    | Error msg, _ ->
      Printf.eprintf
        "baseline %s: %s\nRegenerate it with the current bench harness (see \
         bench/README.md).\n"
        baseline_path msg;
      exit 2
    | _, Error msg ->
      Printf.eprintf "current %s: %s\n" current_path msg;
      exit 2
    | Ok (), Ok () -> ());
    describe "baseline" baseline;
    describe "current " current;
    let thresholds =
      {
        Telemetry.Bench_diff.executed_rel;
        executed_abs;
        hit_rate_rel;
        wall_rel;
        wall_abs;
        wall_fails;
      }
    in
    let report =
      Telemetry.Bench_diff.compare_summaries ~thresholds
        ~require_identical:identical ?min_store_hit_rate ?min_speedup
        ?min_coalesce ?max_p99_ms ?min_rps ?max_refine_error
        ?min_refine_hit_rate ~baseline ~current ()
    in
    Telemetry.Bench_diff.pp_report Format.std_formatter report;
    exit (Telemetry.Bench_diff.exit_code report)

let cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline bench_summary.json.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Freshly generated bench_summary.json.")
  in
  let d = Telemetry.Bench_diff.default_thresholds in
  let executed_rel =
    Arg.(
      value
      & opt float d.executed_rel
      & info [ "executed-threshold" ]
          ~doc:"Allowed relative increase in executed job counts.")
  in
  let executed_abs =
    Arg.(
      value
      & opt float d.executed_abs
      & info [ "executed-slack" ]
          ~doc:"Absolute slack on executed job counts (covers tiny sections).")
  in
  let hit_rate_rel =
    Arg.(
      value
      & opt float d.hit_rate_rel
      & info [ "hit-rate-threshold" ]
          ~doc:"Allowed relative drop in cache-hit rate.")
  in
  let wall_rel =
    Arg.(
      value
      & opt float d.wall_rel
      & info [ "wall-threshold" ]
          ~doc:"Allowed relative increase in wall seconds.")
  in
  let wall_abs =
    Arg.(
      value
      & opt float d.wall_abs
      & info [ "wall-slack" ] ~doc:"Absolute slack on wall seconds.")
  in
  let wall_fails =
    Arg.(
      value & flag
      & info [ "fail-on-wall" ]
          ~doc:
            "Treat wall-time violations as regressions instead of warnings \
             (leave off on shared CI runners).")
  in
  let identical =
    Arg.(
      value & flag
      & info [ "identical" ]
          ~doc:
            "Require the two summaries to be structurally identical after \
             stripping volatile fields (wall times, utilization, store/cache \
             traffic, telemetry snapshot). The warm-cache and kill-resume \
             CI gate: the second run must reproduce the first run's \
             experiment output byte-for-byte. Relative counter thresholds \
             are not gated in this mode (those fields are volatile by its \
             contract); absolute invariants still are.")
  in
  let min_store_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-store-hit-rate" ] ~docv:"RATE"
          ~doc:
            "Fail unless the current run's store hit rate \
             ($(b,store.hit_rate)) is at least RATE — e.g. 0.95 for the \
             warm-cache job.")
  in
  let min_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"RATE"
          ~doc:
            "Fail unless the current run's simulator throughput \
             ($(b,perf.blocks_per_sec), simulated blocks per in-simulator \
             core-second) is at least RATE times the baseline's — e.g. 0.8 \
             for the CI perf job. Ratios between RATE and 1.0 warn.")
  in
  let min_coalesce =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-coalesce" ] ~docv:"RATIO"
          ~doc:
            "Fail unless the current run's request coalesce ratio \
             ($(b,serving.coalesce_ratio), requests answered per engine \
             submission) is at least RATIO — e.g. 1.05 for the CI serve \
             job, which replays duplicate blocks concurrently.")
  in
  let max_p99_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-p99-ms" ] ~docv:"MS"
          ~doc:
            "Fail if the current run's p99 request latency \
             ($(b,serving.p99_ms)) exceeds MS milliseconds.")
  in
  let min_rps =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-rps" ] ~docv:"RATE"
          ~doc:
            "Fail unless the current run's serving throughput \
             ($(b,serving.requests_per_sec), answered requests per replay \
             second) is at least RATE times the baseline's — e.g. 0.8 for \
             the CI serve-perf job. A baseline without the field fails \
             cleanly.")
  in
  let max_refine_error =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-refine-error" ] ~docv:"ERR"
          ~doc:
            "Fail if the current run's descriptor-refinement final error \
             ($(b,refine.final_error), schema v9) exceeds ERR — the CI \
             refine job's recovery gate. A pre-v9 summary fails cleanly.")
  in
  let min_refine_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-refine-hit-rate" ] ~docv:"RATE"
          ~doc:
            "Fail unless the current run's cross-eval refinement store hit \
             rate ($(b,refine.store_hit_rate), schema v9) is at least RATE \
             — e.g. 0.5 to prove candidate evaluations re-simulate only the \
             blocks their patch touches.")
  in
  let term =
    Term.(
      const run $ baseline $ current $ executed_rel $ executed_abs
      $ hit_rate_rel $ wall_rel $ wall_abs $ wall_fails $ identical
      $ min_store_hit_rate $ min_speedup $ min_coalesce $ max_p99_ms
      $ min_rps $ max_refine_error $ min_refine_hit_rate)
  in
  Cmd.v
    (Cmd.info "bhive_bench_diff"
       ~doc:"Gate on bench_summary.json regressions between two revisions.")
    term

let () = exit (Cmd.eval cmd)
