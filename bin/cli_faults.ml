(* Shared resilience flags for the CLIs: --faults, --max-retries,
   --quorum and --store. Linked into every executable of this
   directory; each CLI composes [setup] into its term so the overrides
   are installed before it creates its engine. [setup] also validates
   every engine-relevant environment variable up front: a malformed
   BHIVE_JOBS / BHIVE_FAULTS / BHIVE_STORE is a one-line error and
   exit 2, never a silent fallback. *)

open Cmdliner

let faults_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (Faultsim.parse s)),
      fun fmt c -> Format.pp_print_string fmt (Faultsim.to_string c) )

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection for the measurement substrate, as \
           a comma-separated spec: \
           $(b,crash=0.01,stall=0.005,corrupt=0.002,seed=42). Overrides \
           \\$BHIVE_FAULTS; $(b,none) disables injection.")

let max_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Retries after a job's first failed attempt before it is \
           quarantined (default 4).")

let quorum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quorum" ] ~docv:"N"
        ~doc:
          "Trials per measurement attempt; a result is accepted only when a \
           strict majority of trials agree, which outvotes corrupted \
           timings (default 1: no voting).")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent measurement store directory — the engine's disk cache \
           tier. Measured results are appended to it and warm runs are \
           served from it without re-profiling. Overrides \\$BHIVE_STORE.")

(* Evaluates before the command body runs, so overrides are in place
   when the CLI creates its engine. *)
let setup : unit Term.t =
  let apply faults max_retries quorum store =
    (match Engine.validate_env () with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("bhive: " ^ msg);
      exit 2);
    Option.iter Faultsim.set_default faults;
    Option.iter Engine.set_default_store store;
    Engine.set_default_policy ?max_retries ?quorum ()
  in
  Term.(const apply $ faults_arg $ max_retries_arg $ quorum_arg $ store_arg)
